"""Adaptive row-grouped CSR (Heller & Oberhuber, arXiv:1203.5737).

Rows are sorted by length and bucketed into **groups of similar
length**; each group stores a padded ``(rows, width)`` block whose
width is the group's longest row.  Group boundaries follow a
**target-occupancy heuristic**: a row joins the current group only
while the block stays at least :data:`OCCUPANCY_TARGET` full, so the
padding blow-up that kills plain ELL on skewed degree distributions is
bounded by ``1 / OCCUPANCY_TARGET`` per group — hub rows land in their
own narrow-and-tall... rather wide-and-short blocks instead of
inflating everyone's width.

Reduction-order contract: within a block each row's entries are a
contiguous ascending-column prefix, so restoring global row order with
a cached stable permutation and reducing with ``np.add.reduceat``
reproduces the canonical reduction bit for bit (numpy plan); the
native kernel accumulates each group row serially in storage order —
both are bitwise members of the differential matrix's canonical class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix, check_shape
from repro.formats.coo import COOMatrix

__all__ = [
    "OCCUPANCY_TARGET",
    "RGCSRMatrix",
    "RowGroup",
    "group_boundaries",
    "native_rgcsr_plan",
    "rgcsr_tune_candidate",
]

#: Minimum fraction of useful (non-padding) slots a group block must
#: keep.  0.625 bounds per-group padding at 1.6x while still merging
#: rows whose lengths differ by up to a third.
OCCUPANCY_TARGET = 0.625


def group_boundaries(
    sorted_lengths: np.ndarray, target: float = OCCUPANCY_TARGET
) -> np.ndarray:
    """Group start offsets over descending-sorted row lengths.

    A row opens a new group when padding it to the current group width
    would drop that row below the occupancy target, i.e. when
    ``length < width * target``.  Returns the start index of each
    group; shared by the format builder and the §5 cost model so the
    predicted and built layouts are the same layout.
    """
    lengths = np.asarray(sorted_lengths, dtype=np.int64)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.int64)
    starts = [0]
    width = int(lengths[0])
    # Boundaries are where the length first drops below width * target;
    # widths shrink geometrically so this loop runs O(#groups) times.
    i = 0
    n = lengths.size
    while True:
        # First index whose length drops below width * target, found on
        # the negated (ascending) lengths; side="right" keeps rows with
        # length == width * target in the group.
        cut = int(
            np.searchsorted(-lengths, -float(width) * target, "right")
        )
        cut = max(cut, i + 1)
        if cut >= n:
            break
        starts.append(cut)
        i = cut
        width = int(lengths[cut])
    return np.asarray(starts, dtype=np.int64)


@dataclass(frozen=True)
class RowGroup:
    """One padded block of similar-length rows."""

    #: Global row index of each block row.
    row_ids: np.ndarray
    #: True entry count of each block row (entries form a prefix).
    lengths: np.ndarray
    #: ``(rows, width)`` padded column indices (pad: column 0).
    indices: np.ndarray
    #: ``(rows, width)`` padded values (pad: 0.0).
    data: np.ndarray

    @property
    def width(self) -> int:
        return self.indices.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.lengths.sum())


class RGCSRMatrix(SparseMatrix):
    """Row-grouped CSR storage: a list of :class:`RowGroup` blocks.

    Empty rows belong to no group (their output is the zero fill);
    every non-empty row belongs to exactly one group.
    """

    def __init__(
        self, groups: list[RowGroup], shape: tuple[int, int]
    ) -> None:
        self.shape = check_shape(shape)
        self.groups = list(groups)
        for g in self.groups:
            if g.indices.shape != g.data.shape or g.indices.ndim != 2:
                raise ValidationError(
                    "RGCSR group blocks must share one 2-D shape"
                )
            if g.row_ids.size != g.indices.shape[0] or (
                g.lengths.size != g.row_ids.size
            ):
                raise ValidationError(
                    "RGCSR group rows/lengths mismatch the block"
                )
            if g.row_ids.size and (
                g.row_ids.min() < 0 or g.row_ids.max() >= self.n_rows
            ):
                raise ValidationError("RGCSR row id out of range")
            if g.lengths.size and (
                g.lengths.min() < 1 or g.lengths.max() > g.width
            ):
                raise ValidationError(
                    "RGCSR row length outside its block width"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, *, target: float = OCCUPANCY_TARGET
    ) -> "RGCSRMatrix":
        """Build from a (row-sorted) COO matrix."""
        if not 0.0 < target <= 1.0:
            raise ValidationError(
                f"occupancy target must be in (0, 1], got {target}"
            )
        lengths = np.bincount(coo.rows, minlength=coo.n_rows).astype(
            np.int64
        )
        nonempty = np.nonzero(lengths)[0]
        if nonempty.size == 0:
            return cls([], coo.shape)
        # Stable descending length sort: deterministic layout.
        order = nonempty[
            np.argsort(-lengths[nonempty], kind="stable")
        ]
        sorted_lengths = lengths[order]
        starts = np.zeros(coo.n_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        bounds = group_boundaries(sorted_lengths, target)
        groups: list[RowGroup] = []
        for gi in range(bounds.size):
            lo = int(bounds[gi])
            hi = int(
                bounds[gi + 1] if gi + 1 < bounds.size else order.size
            )
            row_ids = order[lo:hi]
            row_lens = sorted_lengths[lo:hi]
            width = int(row_lens[0])
            n_g = row_ids.size
            idx = np.zeros((n_g, width), dtype=np.int64)
            val = np.zeros((n_g, width), dtype=np.float64)
            # Gather each row's ascending-column slice into its padded
            # prefix (the CSR select_rows gather idiom).
            total = int(row_lens.sum())
            flat_dst = np.arange(total) - np.repeat(
                np.concatenate([[0], np.cumsum(row_lens[:-1])]), row_lens
            )
            src = np.repeat(starts[row_ids], row_lens) + flat_dst
            dst_row = np.repeat(np.arange(n_g), row_lens)
            idx[dst_row, flat_dst] = coo.cols[src]
            val[dst_row, flat_dst] = coo.data[src]
            groups.append(RowGroup(row_ids, row_lens, idx, val))
        return cls(groups, coo.shape)

    # ------------------------------------------------------------------
    # SparseMatrix interface
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(sum(g.nnz for g in self.groups))

    @property
    def padded_entries(self) -> int:
        """Total block slots including padding."""
        return int(sum(g.indices.size for g in self.groups))

    @property
    def occupancy(self) -> float:
        """Useful fraction of the padded storage."""
        padded = self.padded_entries
        return self.nnz / padded if padded else 1.0

    @property
    def nbytes(self) -> int:
        return self._array_bytes(
            *(
                arr
                for g in self.groups
                for arr in (g.row_ids, g.lengths, g.indices, g.data)
            )
        )

    def _build_plan(self):
        from repro.exec.plan import RGCSRPlan

        return RGCSRPlan(self)

    def _entry_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, data) of every stored entry, block order."""
        rows_parts, cols_parts, data_parts = [], [], []
        for g in self.groups:
            mask = (
                np.arange(g.width, dtype=np.int64)[None, :]
                < g.lengths[:, None]
            )
            block_rows, block_slots = np.nonzero(mask)
            rows_parts.append(g.row_ids[block_rows])
            cols_parts.append(g.indices[block_rows, block_slots])
            data_parts.append(g.data[block_rows, block_slots])
        if not rows_parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), np.zeros(0, dtype=np.float64)
        return (
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(data_parts),
        )

    def to_coo(self) -> COOMatrix:
        rows, cols, data = self._entry_arrays()
        return COOMatrix.from_unsorted(
            rows, cols, data, self.shape, sum_duplicates=False
        )

    def _compute_row_lengths(self) -> np.ndarray:
        lengths = np.zeros(self.n_rows, dtype=np.int64)
        for g in self.groups:
            lengths[g.row_ids] = g.lengths
        return lengths


def rgcsr_tune_candidate(matrix) -> bool:
    """Tuner-grid predicate: grouped padding pays exactly where one
    global ELL width would explode — a skewed length distribution."""
    if matrix.nnz == 0 or matrix.n_rows == 0:
        return False
    lengths = matrix.row_lengths()
    mean = matrix.nnz / matrix.n_rows
    return bool(int(lengths.max()) >= 4 * max(1.0, mean))


def native_rgcsr_plan(matrix):
    """Registry hook: the numba row-group kernel plan for this format."""
    from repro.exec.native import NativeRGCSRPlan

    return NativeRGCSRPlan(matrix)
