"""Sparse matrix storage formats, implemented from scratch on NumPy.

These mirror the formats in NVIDIA's SpMV library (Bell & Garland, SC'09;
paper Appendix B) plus the plain CSC layout the tiling transform needs:

====================  =====================================================
:class:`COOMatrix`    coordinate triples, row-sorted
:class:`CSRMatrix`    compressed sparse row
:class:`CSCMatrix`    compressed sparse column
:class:`ELLMatrix`    ELLPACK — fixed row width K, column-major, zero pad
:class:`HYBMatrix`    hybrid — ELL for the first K entries/row, COO rest
:class:`DIAMatrix`    diagonal — only for banded matrices
:class:`PKTMatrix`    packet — clustered dense-ish sub-blocks
====================  =====================================================

Every format can produce the exact product ``y = A @ x`` via ``spmv`` and
report its storage footprint via ``nbytes`` (padding included — the
memory-overhead constraint the paper discusses for ELL and blocked
formats).
"""

from repro.formats.base import SparseMatrix
from repro.formats.convert import from_dense, to_format
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.pkt import PKTMatrix

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "PKTMatrix",
    "SparseMatrix",
    "from_dense",
    "to_format",
]
