"""Sparse matrix storage formats, implemented from scratch on NumPy.

These mirror the formats in NVIDIA's SpMV library (Bell & Garland, SC'09;
paper Appendix B) plus the plain CSC layout the tiling transform needs,
plus the load-balanced zoo from the related work:

====================  =====================================================
:class:`COOMatrix`    coordinate triples, row-sorted
:class:`CSRMatrix`    compressed sparse row
:class:`CSCMatrix`    compressed sparse column
:class:`ELLMatrix`    ELLPACK — fixed row width K, column-major, zero pad
:class:`HYBMatrix`    hybrid — ELL for the first K entries/row, COO rest
:class:`DIAMatrix`    diagonal — only for banded matrices
:class:`PKTMatrix`    packet — clustered dense-ish sub-blocks
:class:`CMRSMatrix`   strip-packed multi-row CSR (Koza et al.)
:class:`RGCSRMatrix`  adaptive row-grouped CSR (Heller & Oberhuber)
:class:`MPCSRMatrix`  merge-path / row-split CSR (Yang–Buluç–Owens)
====================  =====================================================

Every format can produce the exact product ``y = A @ x`` via ``spmv`` and
report its storage footprint via ``nbytes`` (padding included — the
memory-overhead constraint the paper discusses for ELL and blocked
formats).

Formats are described by :class:`FormatSpec` entries in
:mod:`repro.formats.registry`; third-party packages add their own via
:func:`register_format` or a ``repro.formats`` entry point (see
DESIGN.md §13).
"""

from repro.formats.base import SparseMatrix
from repro.formats.cmrs import CMRSMatrix
from repro.formats.convert import from_dense, to_format
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.mpcsr import MPCSRMatrix
from repro.formats.pkt import PKTMatrix
from repro.formats.registry import (
    FormatSpec,
    format_names,
    get_format,
    register_format,
    spec_for,
    unregister_format,
)
from repro.formats.rgcsr import RGCSRMatrix

__all__ = [
    "CMRSMatrix",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "FormatSpec",
    "HYBMatrix",
    "MPCSRMatrix",
    "PKTMatrix",
    "RGCSRMatrix",
    "SparseMatrix",
    "format_names",
    "from_dense",
    "get_format",
    "register_format",
    "spec_for",
    "to_format",
    "unregister_format",
]
