"""Pluggable format/kernel registry.

Every storage format the engine can build — the seven Bell & Garland
formats plus the load-balanced zoo (CMRS, row-grouped CSR, merge-path
CSR) — is described by one :class:`FormatSpec` and registered here,
mirroring :func:`repro.exec.backends.register_backend`.  Everything
that used to hard-code a format list derives from this registry
instead: ``FORMAT_BUILDERS`` (a live view), the differential test
matrix, the tuner's model-pruned candidate grid, the native backend's
plan dispatch, the multi-GPU memory accounting and the ``repro
formats`` CLI.

Third-party formats plug in without touching core, two ways:

* call :func:`register_format` directly with a :class:`FormatSpec`;
* expose an ``importlib.metadata`` entry point under the group
  ``repro.formats`` whose loaded object is either a ``FormatSpec`` or
  a zero-argument callable returning one spec or an iterable of specs
  (see DESIGN.md §13 for the full contract and a minimal package).

Entry-point discovery runs once at import; a broken plugin is recorded
in :func:`entry_point_errors` and never takes the engine down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ValidationError

__all__ = [
    "ENTRY_POINT_GROUP",
    "FormatSpec",
    "discover_entry_points",
    "entry_point_errors",
    "format_names",
    "get_format",
    "model_kernel_map",
    "register_format",
    "spec_for",
    "specs",
    "unregister_format",
]

#: ``importlib.metadata`` entry-point group scanned for plugin formats.
ENTRY_POINT_GROUP = "repro.formats"

_REGISTRY: dict[str, "FormatSpec"] = {}
_ENTRY_POINT_ERRORS: list[dict] = []
_DISCOVERED = False


@dataclass(frozen=True)
class FormatSpec:
    """Everything the engine needs to know about one storage format.

    Parameters
    ----------
    name:
        Registry key, lower-case (``to_format`` name, tuner decision
        name, CLI name).
    cls:
        The :class:`~repro.formats.base.SparseMatrix` subclass.
    build:
        ``build(coo, **kwargs) -> matrix`` converter from a canonical
        row-sorted COO matrix; may raise
        :class:`~repro.errors.FormatNotApplicableError`.
    description:
        One line for the CLI listing.
    bitwise:
        Whether the format's numpy plan reproduces the canonical
        ``np.add.reduceat`` reduction order of the COO reference bit
        for bit (the differential matrix's bitwise class).  Formats
        whose plans associate per-row products differently (ELL, HYB,
        DIA, PKT) are last-ulp only.
    model_kernel:
        §5 selector kernel this format realises on the host, or
        ``None``.  The tuner derives its model→format map and its
        extended ``select_kernel`` candidate list from these.
    tune_candidate:
        Optional cheap predicate ``f(matrix) -> bool``: when true, the
        format joins the tuner's measured grid even if the model did
        not pick it.  This is the registry's "slot in the model-pruned
        candidate grid" — new formats need no tuner code change.
    native_plan:
        Optional factory ``f(matrix) -> SpMVPlan | None`` consulted by
        the numba :class:`~repro.exec.native.NativeBackend` before its
        generic segmented-reduce fallback; return ``None`` to decline.
    supports_repair:
        Whether compaction of a dynamic overlay can rebuild only the
        row segments touched by the delta instead of re-running the
        full ``build``.  Formats whose layout is a pure function of
        per-row runs (COO, CSR) repair in O(nnz) scatter time; formats
        with global layout decisions (strip packing, merge-path splits,
        column clustering) must declare ``False`` and fall back to a
        full rebuild.
    repair:
        ``repair(merged_coo, **kwargs) -> matrix`` incremental
        constructor used when ``supports_repair`` is true.  It receives
        the already row/col-sorted merged COO (untouched segments
        spliced with repaired ones) and must produce a matrix bitwise
        identical to ``build`` on the same input.
    source:
        ``"builtin"`` or the entry-point name that registered it.
    """

    name: str
    cls: type
    build: Callable
    description: str = ""
    bitwise: bool = False
    model_kernel: str | None = None
    tune_candidate: Callable | None = field(default=None, compare=False)
    native_plan: Callable | None = field(default=None, compare=False)
    supports_repair: bool = False
    repair: Callable | None = field(default=None, compare=False)
    source: str = "builtin"


def register_format(spec: FormatSpec) -> FormatSpec:
    """Add a format to the registry (name must be unique)."""
    if not isinstance(spec, FormatSpec):
        raise ValidationError(
            f"register_format expects a FormatSpec, got {type(spec).__name__}"
        )
    key = spec.name.lower()
    if key != spec.name:
        raise ValidationError(
            f"format name {spec.name!r} must be lower-case"
        )
    if key in _REGISTRY:
        raise ValidationError(f"format {key!r} already registered")
    _REGISTRY[key] = spec
    return spec


def unregister_format(name: str) -> None:
    """Remove a registered format (tests / plugin teardown)."""
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ValidationError(f"format {key!r} is not registered")
    del _REGISTRY[key]


def get_format(name: str) -> FormatSpec:
    """Look up one format spec by name."""
    key = str(name).lower()
    spec = _REGISTRY.get(key)
    if spec is None:
        raise ValidationError(
            f"unknown format {name!r}; expected one of {format_names()}"
        )
    return spec


def format_names() -> list[str]:
    """Registered format names, in registration order."""
    return list(_REGISTRY)


def specs() -> list[FormatSpec]:
    """Registered specs, in registration order."""
    return list(_REGISTRY.values())


def spec_for(matrix) -> FormatSpec | None:
    """The spec whose class is exactly ``type(matrix)``, or ``None``."""
    cls = type(matrix)
    for spec in _REGISTRY.values():
        if spec.cls is cls:
            return spec
    return None


def model_kernel_map() -> dict[str, str]:
    """Live ``{model kernel -> format name}`` map from the registry.

    This is what :data:`repro.tuner.tuner.MODEL_FORMAT` used to
    hard-code; registering a format with a ``model_kernel`` gives it a
    tuner grid slot with no tuner change.
    """
    return {
        spec.model_kernel: name
        for name, spec in _REGISTRY.items()
        if spec.model_kernel
    }


def entry_point_errors() -> list[dict]:
    """Plugin failures recorded during discovery (never raised)."""
    return list(_ENTRY_POINT_ERRORS)


def _register_loaded(obj, ep_name: str) -> None:
    """Register whatever an entry point resolved to."""
    if isinstance(obj, FormatSpec):
        loaded = [obj]
    elif callable(obj):
        produced = obj()
        if produced is None:
            return
        loaded = (
            [produced] if isinstance(produced, FormatSpec) else list(produced)
        )
    else:
        raise ValidationError(
            f"entry point {ep_name!r} must resolve to a FormatSpec or a "
            f"callable producing specs, got {type(obj).__name__}"
        )
    for spec in loaded:
        register_format(
            spec if spec.source != "builtin"
            else FormatSpec(**{**spec.__dict__, "source": f"plugin:{ep_name}"})
        )


def discover_entry_points(*, force: bool = False) -> list[str]:
    """Scan the ``repro.formats`` entry-point group and register plugins.

    Runs once per process unless ``force``; returns the names newly
    registered by this call.  A plugin that fails to load or register
    is recorded in :func:`entry_point_errors` — discovery is never
    allowed to break the core engine.
    """
    global _DISCOVERED
    if _DISCOVERED and not force:
        return []
    _DISCOVERED = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return []
    before = set(_REGISTRY)
    try:
        group = entry_points(group=ENTRY_POINT_GROUP)
    except Exception as exc:  # pragma: no cover - metadata corruption
        _ENTRY_POINT_ERRORS.append(
            {"entry_point": "<scan>", "error": repr(exc)}
        )
        return []
    for ep in group:
        try:
            _register_loaded(ep.load(), ep.name)
        except Exception as exc:
            _ENTRY_POINT_ERRORS.append(
                {"entry_point": ep.name, "error": repr(exc)}
            )
    return [name for name in _REGISTRY if name not in before]


# ----------------------------------------------------------------------
# Built-in formats
# ----------------------------------------------------------------------


def _builtin_specs() -> list[FormatSpec]:
    from repro.formats.cmrs import (
        CMRSMatrix,
        cmrs_tune_candidate,
        native_cmrs_plan,
    )
    from repro.formats.coo import COOMatrix
    from repro.formats.csc import CSCMatrix
    from repro.formats.csr import CSRMatrix
    from repro.formats.dia import DIAMatrix
    from repro.formats.ell import ELLMatrix
    from repro.formats.hyb import HYBMatrix
    from repro.formats.mpcsr import (
        MPCSRMatrix,
        mpcsr_tune_candidate,
        native_mpcsr_plan,
    )
    from repro.formats.pkt import PKTMatrix
    from repro.formats.rgcsr import (
        RGCSRMatrix,
        native_rgcsr_plan,
        rgcsr_tune_candidate,
    )

    def _native_csr(matrix):
        from repro.exec.native import NativeCSRPlan

        return NativeCSRPlan(matrix)

    def _native_ell(matrix):
        from repro.exec.native import NativeELLPlan, _left_justified

        if not _left_justified(matrix.valid):
            return None
        return NativeELLPlan(matrix)

    # Registration order matters for multi-format kernel attribute
    # probing (multigpu memory accounting): composite formats precede
    # the plain layouts they embed.
    return [
        FormatSpec(
            name="hyb", cls=HYBMatrix, build=HYBMatrix.from_coo,
            description="hybrid ELL head + COO tail (Bell & Garland)",
            bitwise=False, model_kernel="tile-composite",
        ),
        FormatSpec(
            name="coo", cls=COOMatrix, build=lambda coo, **kw: coo,
            description="row-sorted coordinate triples — the reference",
            bitwise=True,
            # The merged COO *is* the repaired matrix: splicing the
            # untouched row runs with the repaired ones already yields
            # canonical row/col-sorted triples.
            supports_repair=True, repair=lambda coo, **kw: coo,
        ),
        FormatSpec(
            name="csr", cls=CSRMatrix,
            build=lambda coo, **kw: CSRMatrix.from_coo(coo),
            description="compressed sparse row — the universal baseline",
            bitwise=True, model_kernel="csr-vector",
            native_plan=_native_csr,
            # from_coo on the spliced merge is a linear counting pass —
            # no global sort — so it doubles as the repair constructor.
            supports_repair=True,
            repair=lambda coo, **kw: CSRMatrix.from_coo(coo),
        ),
        FormatSpec(
            name="csc", cls=CSCMatrix,
            build=lambda coo, **kw: CSCMatrix.from_coo(coo),
            description="compressed sparse column (tiling transform input)",
            bitwise=True,
        ),
        FormatSpec(
            name="ell", cls=ELLMatrix, build=ELLMatrix.from_coo,
            description="ELLPACK — fixed width, zero padded",
            bitwise=False, model_kernel="ell",
            native_plan=_native_ell,
        ),
        FormatSpec(
            name="dia", cls=DIAMatrix, build=DIAMatrix.from_coo,
            description="diagonal storage (banded matrices only)",
            bitwise=False,
        ),
        FormatSpec(
            name="pkt", cls=PKTMatrix, build=PKTMatrix.from_coo,
            description="packet — clustered dense-ish sub-blocks",
            bitwise=False,
        ),
        FormatSpec(
            name="cmrs", cls=CMRSMatrix, build=CMRSMatrix.from_coo,
            description="strip-packed multi-row CSR (Koza et al., "
            "arXiv:1203.2946)",
            bitwise=True, model_kernel="cmrs",
            tune_candidate=cmrs_tune_candidate,
            native_plan=native_cmrs_plan,
        ),
        FormatSpec(
            name="rgcsr", cls=RGCSRMatrix, build=RGCSRMatrix.from_coo,
            description="adaptive row-grouped CSR, occupancy-targeted "
            "padded groups (arXiv:1203.5737)",
            bitwise=True, model_kernel="rgcsr",
            tune_candidate=rgcsr_tune_candidate,
            native_plan=native_rgcsr_plan,
        ),
        FormatSpec(
            name="mpcsr", cls=MPCSRMatrix, build=MPCSRMatrix.from_coo,
            description="merge-path / row-split CSR, nnz-balanced "
            "splits with carry fix-up (arXiv:1803.08601)",
            bitwise=True, model_kernel="csr-mergepath",
            tune_candidate=mpcsr_tune_candidate,
            native_plan=native_mpcsr_plan,
        ),
    ]


for _spec in _builtin_specs():
    register_format(_spec)
del _spec

discover_entry_points()
