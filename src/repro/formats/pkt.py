"""Packet (PKT) format.

NVIDIA's PKT kernel clusters the non-zeros into dense sub-blocks (the
original uses Metis), loads each block into shared memory and processes
it with one thread block (Appendix B).  We implement the clustering with
a balanced multi-seed BFS over the symmetrised graph — a lightweight
stand-in for Metis that preserves the property that matters: mesh-like
matrices cluster well, power-law matrices do not.

The paper reports that on power-law matrices "the partition step within
this kernel does not produce balanced enough packets and leads to kernel
failure" (§4.1); we reproduce this by validating packet balance and
raising :class:`FormatNotApplicableError` when it fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatNotApplicableError, ValidationError
from repro.formats.base import SparseMatrix, check_shape
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["PKTMatrix", "Packet", "bfs_clusters"]

#: A packet may hold at most this many rows (shared-memory budget:
#: partial results for the packet's rows must fit in 16 KB).
MAX_PACKET_ROWS = 2048

#: Reject the clustering when the heaviest packet exceeds this multiple
#: of the mean packet weight.
MAX_PACKET_IMBALANCE = 4.0

#: Reject the clustering when more than this fraction of non-zeros fall
#: outside every packet (cross-cluster entries).
MAX_REMAINDER_FRACTION = 0.5


def bfs_clusters(
    adjacency: CSRMatrix, n_clusters: int, *, seed: int = 0
) -> np.ndarray:
    """Partition vertices into balanced clusters by multi-seed BFS.

    Frontiers of all clusters grow in lock step; a vertex joins the
    first cluster whose frontier reaches it, and a cluster stops
    claiming vertices once it holds ``ceil(n / n_clusters)`` of them.
    Unreached vertices (isolated or in exhausted components) are dealt
    round-robin to the lightest clusters.
    """
    n = adjacency.n_rows
    if n_clusters < 1:
        raise ValidationError("n_clusters must be >= 1")
    n_clusters = min(n_clusters, max(n, 1))
    labels = np.full(n, -1, dtype=np.int64)
    capacity = -(-n // n_clusters)
    sizes = np.zeros(n_clusters, dtype=np.int64)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)

    frontier_labels = []
    frontier_nodes = []
    taken = 0
    for cluster, start in enumerate(order[:n_clusters]):
        labels[start] = cluster
        sizes[cluster] += 1
        frontier_nodes.append(start)
        frontier_labels.append(cluster)
        taken += 1
    frontier = np.array(frontier_nodes, dtype=np.int64)
    frontier_lab = np.array(frontier_labels, dtype=np.int64)

    while frontier.size and taken < n:
        lengths = np.diff(adjacency.indptr)[frontier]
        if lengths.sum() == 0:
            break
        neigh_lab = np.repeat(frontier_lab, lengths)
        starts = adjacency.indptr[frontier]
        offsets = np.arange(int(lengths.sum())) - np.repeat(
            np.concatenate([[0], np.cumsum(lengths)[:-1]]), lengths
        )
        neighbours = adjacency.indices[np.repeat(starts, lengths) + offsets]
        # First-come-first-served among unlabelled neighbours.
        unlabelled = labels[neighbours] == -1
        neighbours = neighbours[unlabelled]
        neigh_lab = neigh_lab[unlabelled]
        if neighbours.size == 0:
            break
        first = np.unique(neighbours, return_index=True)[1]
        cand_nodes = neighbours[first]
        cand_labels = neigh_lab[first]
        # Enforce per-cluster capacity within the batch: rank the
        # candidates of each cluster and keep only as many as fit.
        order = np.argsort(cand_labels, kind="stable")
        cand_nodes, cand_labels = cand_nodes[order], cand_labels[order]
        cluster_start = np.searchsorted(
            cand_labels, np.arange(n_clusters), side="left"
        )
        rank = np.arange(cand_labels.size) - cluster_start[cand_labels]
        room = rank < (capacity - sizes[cand_labels])
        cand_nodes, cand_labels = cand_nodes[room], cand_labels[room]
        if cand_nodes.size == 0:
            break
        labels[cand_nodes] = cand_labels
        np.add.at(sizes, cand_labels, 1)
        taken += cand_nodes.size
        frontier, frontier_lab = cand_nodes, cand_labels

    leftovers = np.nonzero(labels == -1)[0]
    for node in leftovers:
        cluster = int(np.argmin(sizes))
        labels[node] = cluster
        sizes[cluster] += 1
    return labels


@dataclass
class Packet:
    """One dense-ish sub-block: rows/cols renumbered into the packet."""

    row_ids: np.ndarray
    local: COOMatrix


class PKTMatrix(SparseMatrix):
    """Packet storage: clustered blocks + COO remainder."""

    def __init__(
        self,
        packets: list[Packet],
        remainder: COOMatrix,
        shape: tuple[int, int],
    ) -> None:
        self.shape = check_shape(shape)
        self.packets = packets
        self.remainder = remainder

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        n_packets: int | None = None,
        seed: int = 0,
        validate_balance: bool = True,
    ) -> "PKTMatrix":
        """Cluster and pack; fails on matrices that do not cluster.

        Requires a square matrix (the clustering is over graph vertices).
        """
        if coo.n_rows != coo.n_cols:
            raise FormatNotApplicableError(
                "PKT clustering requires a square (graph) matrix"
            )
        n = coo.n_rows
        if n_packets is None:
            n_packets = max(1, -(-n // MAX_PACKET_ROWS))
        sym = COOMatrix.from_unsorted(
            np.concatenate([coo.rows, coo.cols]),
            np.concatenate([coo.cols, coo.rows]),
            np.ones(2 * coo.nnz),
            coo.shape,
        )
        labels = bfs_clusters(CSRMatrix.from_coo(sym), n_packets, seed=seed)

        inside = labels[coo.rows] == labels[coo.cols]
        if validate_balance:
            weights = np.bincount(
                labels[coo.rows[inside]], minlength=n_packets
            )
            mean = weights.mean() if weights.size else 0.0
            remainder_frac = 1.0 - inside.mean() if coo.nnz else 0.0
            if mean > 0 and weights.max() > MAX_PACKET_IMBALANCE * mean:
                raise FormatNotApplicableError(
                    "packet weights too imbalanced "
                    f"(max {weights.max()} vs mean {mean:.0f}); "
                    "PKT fails on power-law matrices"
                )
            if remainder_frac > MAX_REMAINDER_FRACTION:
                raise FormatNotApplicableError(
                    f"{remainder_frac:.0%} of non-zeros fall between "
                    "clusters; PKT fails on poorly clusterable matrices"
                )

        packets: list[Packet] = []
        for cluster in range(n_packets):
            members = np.nonzero(labels == cluster)[0]
            if members.size == 0:
                continue
            mask = inside & (labels[coo.rows] == cluster)
            lookup = np.full(n, -1, dtype=np.int64)
            lookup[members] = np.arange(members.size)
            local = COOMatrix.from_unsorted(
                lookup[coo.rows[mask]],
                lookup[coo.cols[mask]],
                coo.data[mask],
                (members.size, members.size),
                sum_duplicates=False,
            )
            packets.append(Packet(row_ids=members, local=local))
        remainder = COOMatrix(
            coo.rows[~inside], coo.cols[~inside], coo.data[~inside], coo.shape
        )
        return cls(packets, remainder, coo.shape)

    @property
    def nnz(self) -> int:
        return self.remainder.nnz + sum(p.local.nnz for p in self.packets)

    @property
    def nbytes(self) -> int:
        total = self.remainder.nbytes
        for packet in self.packets:
            total += packet.local.nbytes + packet.row_ids.size * 4
        return total

    def _build_plan(self):
        from repro.exec.plan import PKTPlan

        return PKTPlan(self)

    def to_coo(self) -> COOMatrix:
        rows = [self.remainder.rows]
        cols = [self.remainder.cols]
        data = [self.remainder.data]
        for packet in self.packets:
            rows.append(packet.row_ids[packet.local.rows])
            cols.append(packet.row_ids[packet.local.cols])
            data.append(packet.local.data)
        return COOMatrix.from_unsorted(
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(data),
            self.shape,
            sum_duplicates=False,
        )
