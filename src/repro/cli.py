"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library's main flows:

``datasets``
    List the registered dataset analogues with their paper statistics.
``spmv``
    Run one (or all) SpMV kernels on a named dataset and print the
    simulated GFLOPS / GB/s profile.
``pagerank``
    Run PageRank on a named dataset with a chosen kernel.
``autotune``
    Tune the tile-composite parameters for a dataset and report the
    chosen tile count / workload sizes and the model's prediction.
``info``
    Structural fingerprint of a dataset (degree skew, power-law fit).
``profile``
    Run the instrumented PageRank/HITS/RWR workload on an R-MAT graph
    with the observability layer enabled and emit the JSON profile
    report (plan-cache and pool hit rates, per-shard seconds,
    per-iteration residual traces).
``tune``
    Measured end-to-end auto-tune of a MatrixMarket file or R-MAT
    graph: prune ``format x backend x shard-count`` candidates with
    the §5 model, time the survivors with short real SpMV runs, print
    the measured table and persist the decision in the tuning cache.
``chaos``
    Arm the fault injector against an R-MAT workload and emit a JSON
    survival report: sharded SpMV under every fault site, a
    pinned-iteration PageRank at a configurable shard-failure rate,
    checkpoint/resume, and a node-failure drill — each must recover
    bit-identically.
``fit``
    Fit a declarative :class:`~repro.graphs.fit.ScenarioSpec` from a
    MatrixMarket file (or a synthetic R-MAT graph), print the fitted
    structure table and optionally write the spec JSON.
``scenarios``
    List the curated scenario corpus, or generate one scenario (or a
    user-supplied spec file) as a seeded MatrixMarket matrix.
``serve``
    Long-lived query service: register a graph (MatrixMarket or R-MAT),
    keep its plans hot and answer PPR/RWR/HITS queries over a
    JSON-lines socket with coalesced batched execution; ``--selftest``
    runs the concurrent bitwise smoke instead of serving.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from repro.errors import FormatNotApplicableError, ReproError
from repro.plotting import ascii_table
from repro.version import __version__

__all__ = ["build_parser", "main"]

_DEFAULT_KERNELS = [
    "cpu-csr", "csr", "csr-vector", "bsk-bdw", "coo", "ell", "hyb",
    "dia", "pkt", "tile-coo", "tile-composite",
]


def _shard_count(value: str):
    """``--shards`` parser: a positive int or the literal ``auto``."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast SpMV on (simulated) GPUs for graph mining — "
        "VLDB 2011 reproduction",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the registered datasets")

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("dataset", help="dataset name (see `datasets`)")
        p.add_argument(
            "--scale", type=float, default=None,
            help="down-scale factor (default: the dataset's registry "
            "default)",
        )
        p.add_argument(
            "--seed", type=int, default=7, help="generator seed"
        )

    spmv = sub.add_parser(
        "spmv", help="simulate SpMV kernels on a dataset"
    )
    add_dataset_args(spmv)
    spmv.add_argument(
        "--kernel", action="append", dest="kernels", default=None,
        help="kernel to run (repeatable; default: all)",
    )
    spmv.add_argument(
        "--tuned", action="store_true",
        help="auto-tune the tile-composite kernel",
    )

    pagerank = sub.add_parser(
        "pagerank", help="run PageRank on a dataset"
    )
    add_dataset_args(pagerank)
    pagerank.add_argument("--kernel", default="tile-composite")
    pagerank.add_argument("--damping", type=float, default=0.85)
    pagerank.add_argument("--tol", type=float, default=1e-8)
    pagerank.add_argument(
        "--top", type=int, default=5, help="print the top-k nodes"
    )
    pagerank.add_argument(
        "--shards", type=_shard_count, default=None, metavar="N|auto",
        help="run the power loop on a sharded parallel executor: a "
        "shard count, or 'auto' for the nnz-and-cores policy "
        "(default: single-shard)",
    )
    pagerank.add_argument(
        "--shard-mode", choices=["thread", "process"], default=None,
        help="shard fan-out mechanism: 'thread' (pool, default) or "
        "'process' (shared-memory worker processes — true multicore "
        "for GIL-bound backends); requires --shards",
    )

    sub.add_parser(
        "formats",
        help="list registered storage formats and execution backends "
        "(including repro.formats entry-point plugins)",
    )

    autotune = sub.add_parser(
        "autotune", help="tune tile-composite parameters for a dataset"
    )
    add_dataset_args(autotune)

    info = sub.add_parser(
        "info", help="structural fingerprint of a dataset"
    )
    add_dataset_args(info)

    profile = sub.add_parser(
        "profile",
        help="instrumented PageRank/HITS/RWR run emitting a JSON "
        "profile report",
    )
    profile.add_argument(
        "--quick", action="store_true",
        help="CI-sized graph and iteration budget",
    )
    profile.add_argument(
        "--nodes", type=int, default=4096, help="R-MAT vertex count"
    )
    profile.add_argument(
        "--edges", type=int, default=65536, help="R-MAT edge draws"
    )
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--shards", type=_shard_count, default=2, metavar="N|auto",
        help="shard count for the PageRank leg (default: 2)",
    )
    profile.add_argument("--tol", type=float, default=1e-8)
    profile.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here (default: print to stdout)",
    )

    tune_p = sub.add_parser(
        "tune",
        help="measured auto-tune: pick format x backend x shard count "
        "for a matrix and persist the decision",
    )
    tune_p.add_argument(
        "matrix", nargs="?", default=None, metavar="MATRIX.mtx",
        help="MatrixMarket file to tune (or use --rmat)",
    )
    tune_p.add_argument(
        "--rmat", action="store_true",
        help="tune a synthetic R-MAT graph instead of a file",
    )
    tune_p.add_argument(
        "--nodes", type=int, default=4096, help="R-MAT vertex count"
    )
    tune_p.add_argument(
        "--edges", type=int, default=65536, help="R-MAT edge draws"
    )
    tune_p.add_argument("--seed", type=int, default=7)
    tune_p.add_argument(
        "--quick", action="store_true",
        help="reduced warmup/repeat measurement budget (CI)",
    )
    tune_p.add_argument(
        "--force", action="store_true",
        help="re-measure even when a cached decision exists",
    )
    tune_p.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON tuning report here",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection survival drill emitting a JSON report",
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="smoke-test-sized graph and iteration budget",
    )
    chaos.add_argument(
        "--nodes", type=int, default=1024, help="R-MAT vertex count"
    )
    chaos.add_argument(
        "--edges", type=int, default=8192, help="R-MAT edge draws"
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--iterations", type=int, default=100,
        help="pinned PageRank iteration count for the acceptance "
        "scenario (default: 100)",
    )
    chaos.add_argument(
        "--failure-rate", type=float, default=0.2,
        help="per-attempt shard failure probability (default: 0.2)",
    )
    chaos.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the sharded scenarios (default: 4)",
    )
    chaos.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here (default: print to stdout)",
    )

    fit_p = sub.add_parser(
        "fit",
        help="fit a declarative scenario spec from a matrix and "
        "optionally write it as JSON",
    )
    fit_p.add_argument(
        "matrix", nargs="?", default=None, metavar="MATRIX.mtx",
        help="MatrixMarket file to fit (or use --rmat)",
    )
    fit_p.add_argument(
        "--rmat", action="store_true",
        help="fit a synthetic R-MAT graph instead of a file",
    )
    fit_p.add_argument(
        "--nodes", type=int, default=4096, help="R-MAT vertex count"
    )
    fit_p.add_argument(
        "--edges", type=int, default=65536, help="R-MAT edge draws"
    )
    fit_p.add_argument("--seed", type=int, default=7)
    fit_p.add_argument(
        "--name", default=None, help="spec name (default: file stem)"
    )
    fit_p.add_argument(
        "--out", default=None, metavar="SPEC.json",
        help="write the fitted spec JSON here",
    )

    scen = sub.add_parser(
        "scenarios",
        help="list the scenario corpus or generate one scenario",
    )
    scen.add_argument(
        "--generate", default=None, metavar="NAME",
        help="generate this corpus scenario instead of listing",
    )
    scen.add_argument(
        "--spec", default=None, metavar="SPEC.json",
        help="generate from a spec JSON file instead of a corpus name",
    )
    scen.add_argument(
        "--scale", type=float, default=1.0,
        help="size multiplier for generation (default: 1.0)",
    )
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument(
        "--out", default=None, metavar="MATRIX.mtx",
        help="write the generated matrix here (MatrixMarket)",
    )

    update = sub.add_parser(
        "update",
        help="stream seeded edge updates through a dynamic matrix, "
        "timing overlay queries against full rebuilds and verifying "
        "every batch bitwise",
    )
    update.add_argument(
        "matrix", nargs="?", default=None, metavar="MATRIX.mtx",
        help="MatrixMarket file to evolve (or use --rmat)",
    )
    update.add_argument(
        "--rmat", action="store_true",
        help="evolve a synthetic R-MAT graph instead of a file",
    )
    update.add_argument(
        "--nodes", type=int, default=4096, help="R-MAT vertex count"
    )
    update.add_argument(
        "--edges", type=int, default=65536, help="R-MAT edge draws"
    )
    update.add_argument(
        "--seed", type=int, default=7,
        help="seed for the graph and the update stream",
    )
    update.add_argument(
        "--format", dest="fmt", default="csr",
        help="storage format of the evolving matrix (default: csr)",
    )
    update.add_argument(
        "--backend", default=None,
        help="execution backend (default: best available)",
    )
    update.add_argument(
        "--ops", type=int, default=4096,
        help="total update operations in the stream (default: 4096)",
    )
    update.add_argument(
        "--batches", type=int, default=8,
        help="number of apply_updates batches (default: 8)",
    )
    update.add_argument(
        "--nnz-delta", type=float, default=0.25,
        help="compaction threshold: pending ops as a fraction of base "
        "nnz (float) or an absolute count (int); default 0.25",
    )
    update.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here",
    )

    serve = sub.add_parser(
        "serve",
        help="serve PPR/RWR/HITS queries over a JSON-lines socket with "
        "coalesced batched execution (--selftest for the CI smoke)",
    )
    serve.add_argument(
        "matrix", nargs="?", default=None, metavar="MATRIX.mtx",
        help="MatrixMarket file to serve (default: a seeded R-MAT "
        "graph)",
    )
    serve.add_argument(
        "--selftest", action="store_true",
        help="fire concurrent mixed queries at an in-process service, "
        "verify every reply bitwise against solo execution, print the "
        "SLA report and exit non-zero on any mismatch",
    )
    serve.add_argument(
        "--clients", type=int, default=32,
        help="concurrent queries for --selftest (default: 32)",
    )
    serve.add_argument(
        "--nodes", type=int, default=1024, help="R-MAT vertex count"
    )
    serve.add_argument(
        "--edges", type=int, default=8192, help="R-MAT edge draws"
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--name", default=None,
        help="graph name to register (default: file stem or 'rmat')",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7077,
        help="listening port (0 picks a free one; default: 7077)",
    )
    serve.add_argument(
        "--window-ms", type=float, default=2.0,
        help="coalescing window in milliseconds (default: 2)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="maximum coalesced batch width (default: 8)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission-control in-flight budget (default: 64)",
    )
    serve.add_argument(
        "--max-warm", type=int, default=4,
        help="maximum graphs with live engines (default: 4)",
    )
    serve.add_argument(
        "--shards", type=_shard_count, default=None, metavar="N|auto",
        help="serve through a sharded executor (default: cached plan)",
    )
    serve.add_argument(
        "--shard-mode", choices=["thread", "process"], default=None,
        help="shard fan-out mechanism (requires --shards)",
    )
    serve.add_argument(
        "--tune", action="store_true",
        help="let the measured auto-tuner pick the execution engine",
    )
    serve.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the selftest JSON report here",
    )
    return parser


def _load(args):
    from repro.graphs import datasets

    ds = datasets.load(args.dataset, scale=args.scale, seed=args.seed)
    device = datasets.matched_device(ds)
    return ds, device


def _cmd_datasets(_args) -> int:
    from repro.graphs import datasets

    rows = []
    for name in datasets.list_datasets():
        ds_small = datasets.load(name, scale=1000)
        rows.append([
            name, ds_small.kind, ds_small.power_law,
            f"{ds_small.paper_shape[0]:,}",
            f"{ds_small.paper_shape[2]:,}",
        ])
    print(ascii_table(
        ["name", "kind", "power-law", "paper rows", "paper nnz"],
        rows, title="Registered dataset analogues",
    ))
    return 0


def _cmd_spmv(args) -> int:
    ds, device = _load(args)
    kernels_to_run = args.kernels or _DEFAULT_KERNELS
    from repro import kernels as kernel_mod

    x = np.random.default_rng(0).random(ds.matrix.n_cols)
    rows = []
    for name in kernels_to_run:
        options = {}
        if name == "tile-composite" and args.tuned:
            options["tuned"] = True
        try:
            kernel = kernel_mod.create(
                name, ds.matrix, device=device, **options
            )
        except FormatNotApplicableError as exc:
            rows.append([name, "-", "-", "-", f"n/a: {exc}"[:46]])
            continue
        kernel.spmv(x)  # exercise the functional path
        cost = kernel.cost()
        rows.append([
            name, cost.gflops, cost.bandwidth_gbs,
            cost.time_seconds * 1e3, "ok",
        ])
    print(ascii_table(
        ["kernel", "GFLOPS", "GB/s", "time (ms)", "status"],
        rows,
        title=f"SpMV on {ds.name} (shape {ds.matrix.shape}, "
        f"nnz {ds.nnz:,}) — simulated {device.name}",
        precision=3,
    ))
    return 0


def _cmd_pagerank(args) -> int:
    from repro.mining import pagerank

    ds, device = _load(args)
    result = pagerank(
        ds.matrix, kernel=args.kernel, device=device,
        damping=args.damping, tol=args.tol, n_shards=args.shards,
        shard_mode=args.shard_mode,
    )
    print(f"PageRank on {ds.name} with {result.kernel_name}: "
          f"{result.iterations} iterations, converged={result.converged}")
    shards_used = result.extra.get("n_shards", 1)
    if shards_used != 1:
        mode = args.shard_mode or "thread"
        print(f"sharded executor: {shards_used} row shards ({mode} mode)")
    print(f"simulated total time {result.seconds * 1e3:.3f} ms "
          f"({result.gflops:.2f} GFLOPS per iteration)")
    top = np.argsort(result.vector)[::-1][: args.top]
    rows = [[int(node), result.vector[node]] for node in top]
    print(ascii_table(["node", "rank"], rows, precision=6))
    return 0


def _cmd_autotune(args) -> int:
    from repro.core.autotune import autotune

    ds, device = _load(args)
    result = autotune(ds.matrix, device)
    print(f"Auto-tuned tile-composite for {ds.name}:")
    print(f"  tiles: {result.n_tiles} "
          f"(tile width {device.tile_width_columns} columns)")
    shown = ", ".join(str(s) for s in result.workload_sizes[:10])
    suffix = ", ..." if len(result.workload_sizes) > 10 else ""
    print(f"  workload sizes: [{shown}{suffix}]")
    print(f"  remainder workload size: {result.remainder_workload_size}")
    print(f"  predicted SpMV time: "
          f"{result.predicted_seconds * 1e6:.1f} us")
    return 0


def _cmd_info(args) -> int:
    from repro.graphs import stats

    ds, _device = _load(args)
    summary = stats.summarize(ds.matrix)
    rows = [
        ["rows x cols", f"{summary.n_rows:,} x {summary.n_cols:,}"],
        ["non-zeros", f"{summary.nnz:,}"],
        ["mean row length", summary.mean_row_length],
        ["max row length", summary.max_row_length],
        ["mean column length", summary.mean_col_length],
        ["max column length", summary.max_col_length],
        ["column-length Gini", summary.col_gini],
        ["top-10% column share", summary.col_top10_share],
        ["column power-law exponent", summary.col_exponent],
        ["power-law verdict", summary.power_law],
    ]
    print(ascii_table(["property", "value"], rows,
                      title=f"{ds.name} (scale {ds.scale:g})"))
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import run_profile

    report = run_profile(
        n_nodes=args.nodes,
        n_edges=args.edges,
        seed=args.seed,
        shards=args.shards,
        tol=args.tol,
        quick=args.quick,
    )
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
    derived = report["derived"]

    def _pct(rate):
        return "n/a" if rate is None else f"{100 * rate:.1f}%"

    rows = [
        ["plan-cache hit rate", _pct(derived["plan_cache_hit_rate"])],
        ["pool hit rate", _pct(derived["pool_hit_rate"])],
        ["pool bytes allocated", f"{derived['pool_bytes_allocated']:,.0f}"],
        ["shard imbalance (max/mean)",
         "n/a" if derived["shard_imbalance"] is None
         else f"{derived['shard_imbalance']:.2f}"],
    ]
    for key, seconds in derived["per_shard_seconds"].items():
        rows.append([
            key,
            f"{seconds['mean'] * 1e3:.3f} ms "
            f"(p50 {seconds['p50'] * 1e3:.3f} / "
            f"p99 {seconds['p99'] * 1e3:.3f})",
        ])
    for name, section in report["algorithms"].items():
        rows.append([
            f"{name} iterations",
            f"{section['iterations']} "
            f"(converged={section['converged']})",
        ])
    config = report["config"]
    print(ascii_table(
        ["metric", "value"], rows,
        title=f"repro profile — R-MAT {config['n_nodes']:,} nodes, "
        f"{config['nnz']:,} nnz",
    ))
    if args.out:
        print(f"report written to {args.out}")
    else:
        print(payload)
    return 0


def _cmd_formats(_args) -> int:
    from repro.exec.backends import _BACKENDS, available_backends
    from repro.exec.native import native_available
    from repro.formats.registry import entry_point_errors, specs

    rows = []
    for spec in specs():
        rows.append([
            spec.name,
            spec.cls.__name__,
            spec.source,
            "yes" if spec.bitwise else "last-ulp",
            spec.model_kernel or "-",
            "dedicated" if spec.native_plan is not None else "seg-reduce",
            spec.description,
        ])
    print(ascii_table(
        ["format", "class", "source", "bitwise", "model kernel",
         "native plan", "description"],
        rows,
        title="Registered storage formats (repro.formats.registry)",
    ))
    available = set(available_backends())
    backend_rows = [
        [name, "available" if name in available else "unavailable"]
        for name in _BACKENDS
    ]
    print(ascii_table(
        ["backend", "status"], backend_rows,
        title="Execution backends (repro.exec.backends)",
    ))
    if not native_available():
        print("note: native backend needs numba "
              "(pip install 'repro[native]')")
    errors = entry_point_errors()
    for err in errors:
        print(f"plugin error: {err['entry_point']}: {err['error']}")
    return 0


def _cmd_tune(args) -> int:
    from repro.errors import ValidationError
    from repro.tuner import resolve_cache_path, tune

    if args.rmat == (args.matrix is not None):
        raise ValidationError(
            "pass exactly one input: a MatrixMarket path or --rmat"
        )
    if args.rmat:
        from repro.graphs.rmat import rmat_graph

        matrix = rmat_graph(args.nodes, args.edges, seed=args.seed)
        source = f"rmat(nodes={args.nodes}, edges={args.edges}, seed={args.seed})"
    else:
        from repro.io.matrix_market import read_matrix_market

        try:
            matrix = read_matrix_market(args.matrix)
        except OSError as exc:
            raise ValidationError(
                f"cannot read {args.matrix!r}: {exc}"
            ) from exc
        source = args.matrix
    budget = {"repeats": 2, "warmup": 1} if args.quick else {}
    decision = tune(matrix, force=args.force, **budget)
    rows = []
    for cand in decision.candidates:
        chosen = (
            cand.get("format") == decision.format
            and cand.get("backend") == decision.backend
            and cand.get("n_shards") == decision.n_shards
            and cand.get("mode", "thread") == decision.mode
            and "seconds" in cand
        )
        rows.append([
            cand.get("format", "-"),
            cand.get("backend", "-"),
            cand.get("n_shards", "-"),
            cand.get("mode", "-"),
            cand["seconds"] * 1e6 if "seconds" in cand
            else f"skipped: {cand.get('error', '?')}"[:40],
            "<== chosen" if chosen else "",
        ])
    print(ascii_table(
        ["format", "backend", "shards", "mode", "median spmv (us)", ""],
        rows,
        title=f"Measured auto-tune of {source} "
        f"(shape {matrix.shape}, nnz {matrix.nnz:,})",
        precision=2,
    ))
    cache_path = resolve_cache_path()
    print(f"decision: format={decision.format} backend={decision.backend} "
          f"n_shards={decision.n_shards} mode={decision.mode} "
          f"({decision.seconds * 1e6:.2f} us median)")
    print(f"model seed: {decision.model_kernel or 'bypassed'}")
    print("source: cache hit" if decision.from_cache
          else "source: measured")
    print(f"cache: {cache_path or 'disabled'}")
    if args.out:
        report = {
            "source": source,
            "shape": list(matrix.shape),
            "nnz": matrix.nnz,
            "decision": decision.to_dict(),
            "from_cache": decision.from_cache,
            "cache_path": str(cache_path) if cache_path else None,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.out}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.resilience.chaos import run_chaos

    report = run_chaos(
        n_nodes=args.nodes,
        n_edges=args.edges,
        seed=args.seed,
        iterations=args.iterations,
        failure_rate=args.failure_rate,
        n_shards=args.shards,
        quick=args.quick,
    )
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
    rows = []
    for scenario in report["scenarios"]:
        metrics = scenario.get("metrics", {})
        rows.append([
            scenario["name"],
            "survived" if scenario["survived"] else "FAILED",
            metrics.get("injected", scenario.get("injected", 0)),
            metrics.get("retries", 0),
            metrics.get("degraded", 0),
        ])
    config = report["config"]
    print(ascii_table(
        ["scenario", "verdict", "injected", "retries", "degraded"],
        rows,
        title=f"repro chaos — R-MAT {config['n_nodes']:,} nodes, "
        f"{config['nnz']:,} nnz, failure rate "
        f"{config['failure_rate']:g}",
    ))
    summary = report["summary"]
    print(f"{summary['survived']}/{summary['scenarios']} scenarios "
          "survived")
    if args.out:
        print(f"report written to {args.out}")
    else:
        print(payload)
    return 0 if summary["all_survived"] else 1


def _spec_rows(spec):
    """Table rows for one ScenarioSpec (shared by fit/scenarios)."""
    def _opt(value):
        return "-" if value is None else value

    return [
        ["shape", f"{spec.n_rows:,} x {spec.n_cols:,}"],
        ["nnz", f"{spec.nnz:,}"],
        ["density", spec.density],
        ["row exponent", _opt(spec.row_exponent)],
        ["col exponent", _opt(spec.col_exponent)],
        ["bandedness", spec.bandedness],
        ["half bandwidth", spec.half_bandwidth],
        ["components", spec.n_components],
        ["symmetry", spec.symmetry],
        ["empty-row fraction", spec.empty_row_fraction],
        ["hub row share", spec.hub_row_share],
        ["hub col share", spec.hub_col_share],
        ["row Gini", _opt(spec.row_gini)],
        ["col Gini", _opt(spec.col_gini)],
        ["tags", ", ".join(spec.tags) or "-"],
    ]


def _cmd_fit(args) -> int:
    from repro.errors import ValidationError
    from repro.graphs.fit import fit

    if args.rmat == (args.matrix is not None):
        raise ValidationError(
            "pass exactly one input: a MatrixMarket path or --rmat"
        )
    if args.rmat:
        from repro.graphs.rmat import rmat_graph

        matrix = rmat_graph(args.nodes, args.edges, seed=args.seed)
        name = args.name or "rmat"
        spec = fit(matrix, name=name)
        source = f"rmat(nodes={args.nodes}, edges={args.edges}, " \
                 f"seed={args.seed})"
    else:
        spec = fit(args.matrix, name=args.name)
        source = args.matrix
    # Write the artifact before printing: a closed stdout pipe must
    # not lose the spec.
    if args.out:
        spec.to_json(args.out)
    print(ascii_table(
        ["property", "value"], _spec_rows(spec),
        title=f"Fitted scenario spec of {source}", precision=4,
    ))
    if args.out:
        print(f"spec written to {args.out}")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.errors import ValidationError
    from repro.graphs import scenarios
    from repro.graphs.fit import ScenarioSpec, generate

    if args.generate and args.spec:
        raise ValidationError(
            "pass --generate NAME or --spec FILE, not both"
        )
    if args.generate or args.spec:
        if args.spec:
            spec = ScenarioSpec.from_json(args.spec)
        else:
            spec = scenarios.get_scenario(args.generate)
        matrix = generate(spec, scale=args.scale, seed=args.seed)
        print(f"generated {spec.name!r} at scale {args.scale:g} "
              f"(seed {args.seed}): shape {matrix.shape}, "
              f"nnz {matrix.nnz:,}")
        if args.out:
            from repro.io.matrix_market import write_matrix_market

            write_matrix_market(matrix, args.out)
            print(f"matrix written to {args.out}")
        return 0
    rows = []
    for spec in scenarios.corpus():
        structure = []
        if spec.row_exponent or spec.col_exponent:
            exponent = spec.row_exponent or spec.col_exponent
            structure.append(f"powerlaw γ={exponent:g}")
        if spec.bandedness:
            structure.append(f"band hb={spec.half_bandwidth}")
        if spec.n_components > 1:
            structure.append(f"{spec.n_components} blocks")
        if spec.symmetry:
            structure.append(f"sym {spec.symmetry:g}")
        if spec.empty_row_fraction:
            structure.append(f"{spec.empty_row_fraction:.0%} empty rows")
        if spec.hub_row_share or spec.hub_col_share:
            share = max(spec.hub_row_share, spec.hub_col_share)
            structure.append(f"hub {share:g}")
        rows.append([
            spec.name,
            f"{spec.n_rows} x {spec.n_cols}",
            f"{spec.nnz:,}",
            "yes" if spec.adversarial else "",
            "; ".join(structure) or "uniform",
        ])
    print(ascii_table(
        ["scenario", "shape", "nnz", "adversarial", "structure"],
        rows,
        title=f"Scenario corpus ({len(rows)} scenarios, "
        f"{len(scenarios.adversarial_names())} adversarial)",
    ))
    return 0


def _cmd_update(args) -> int:
    import time

    from repro.errors import ValidationError
    from repro.formats.registry import get_format
    from repro.graphs.dynamic import DynamicMatrix, seeded_update_stream

    if args.rmat == (args.matrix is not None):
        raise ValidationError(
            "pass exactly one input: a MatrixMarket path or --rmat"
        )
    if args.batches < 1:
        raise ValidationError("--batches must be at least 1")
    if args.ops < args.batches:
        raise ValidationError("--ops must be at least --batches")
    if args.rmat:
        from repro.graphs.rmat import rmat_graph

        matrix = rmat_graph(args.nodes, args.edges, seed=args.seed)
        source = (
            f"rmat(nodes={args.nodes}, edges={args.edges}, "
            f"seed={args.seed})"
        )
    else:
        from repro.io.matrix_market import read_matrix_market

        try:
            matrix = read_matrix_market(args.matrix)
        except OSError as exc:
            raise ValidationError(
                f"cannot read {args.matrix!r}: {exc}"
            ) from exc
        source = args.matrix
    spec = get_format(args.fmt)
    dyn = DynamicMatrix(
        spec.build(matrix.to_coo()), nnz_delta=args.nnz_delta
    )
    stream = seeded_update_stream(dyn, args.ops, seed=args.seed)
    bounds = np.linspace(0, len(stream), args.batches + 1).astype(int)
    x = np.random.default_rng(args.seed).random(dyn.n_cols)
    out = np.empty(dyn.n_rows)
    rows = []
    batch_reports = []
    all_bitwise = True
    for index in range(args.batches):
        batch = stream[bounds[index]:bounds[index + 1]]
        t0 = time.perf_counter()
        dyn.apply_updates(batch)
        t_apply = time.perf_counter() - t0
        t0 = time.perf_counter()
        dyn.spmv_plan(args.backend).execute(x, out=out)
        t_query = time.perf_counter() - t0
        # Reference: the same format rebuilt from scratch at this
        # version, queried through the same backend.
        t0 = time.perf_counter()
        rebuilt = spec.build(dyn.to_coo())
        reference = rebuilt.spmv_plan(args.backend).execute(x)
        t_rebuild = time.perf_counter() - t0
        bitwise = bool(np.array_equal(out, reference))
        all_bitwise &= bitwise
        rows.append([
            index, len(batch), dyn.nnz, dyn.overlay_nnz,
            t_apply * 1e3, t_query * 1e3, t_rebuild * 1e3,
            "bitwise" if bitwise else "MISMATCH",
        ])
        batch_reports.append({
            "batch": index,
            "ops": len(batch),
            "nnz": dyn.nnz,
            "overlay_nnz": dyn.overlay_nnz,
            "apply_seconds": t_apply,
            "query_seconds": t_query,
            "rebuild_seconds": t_rebuild,
            "bitwise": bitwise,
        })
    dyn.compact()
    final = bool(np.array_equal(
        dyn.spmv_plan(args.backend).execute(x),
        spec.build(dyn.to_coo()).spmv_plan(args.backend).execute(x),
    ))
    all_bitwise &= final
    print(ascii_table(
        ["batch", "ops", "nnz", "overlay", "apply (ms)", "query (ms)",
         "rebuild+query (ms)", "verdict"],
        rows,
        title=f"repro update — {source} as {args.fmt}, "
        f"{args.ops:,} ops in {args.batches} batches",
        precision=3,
    ))
    stats = dict(dyn.stats)
    print(
        f"compactions: {stats['compactions']} "
        f"(repairs {stats['repairs']}, rebuilds {stats['rebuilds']}); "
        f"final compacted query "
        f"{'bitwise' if final else 'MISMATCH'} vs rebuild"
    )
    if args.out:
        report = {
            "source": source,
            "format": args.fmt,
            "backend": args.backend,
            "shape": list(dyn.shape),
            "ops": args.ops,
            "nnz_delta": args.nnz_delta,
            "batches": batch_reports,
            "stats": stats,
            "all_bitwise": all_bitwise,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.out}")
    if not all_bitwise:
        print("error: updated matrix diverged from full rebuild",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.errors import ValidationError
    from repro.serve import QueryService, run_selftest, serve_tcp

    if args.selftest:
        if args.matrix is not None:
            raise ValidationError(
                "--selftest runs on its own seeded R-MAT graph; do not "
                "also pass a matrix file"
            )
        report = run_selftest(
            clients=args.clients,
            n_nodes=args.nodes,
            nnz=args.edges,
            graph_seed=args.seed,
            window_seconds=args.window_ms / 1e3,
            max_batch=args.max_batch,
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
        sla = report["sla"]
        rows = [
            ["clients", report["clients"]],
            ["bitwise checked", report["bitwise_checked"]],
            ["bitwise mismatches", len(report["bitwise_mismatches"])],
            ["coalesced queries", report["coalesced_queries"]],
            ["max batch width", report["max_batch_width"]],
            ["statuses", ", ".join(report["statuses"])],
            ["rejected", sla["rejected"]],
        ]
        for label, stats in sla["latency_seconds"].items():
            rows.append([
                label,
                f"p50 {stats['p50'] * 1e3:.2f} ms / "
                f"p99 {stats['p99'] * 1e3:.2f} ms",
            ])
        print(ascii_table(
            ["metric", "value"], rows,
            title=f"repro serve --selftest — R-MAT {args.nodes:,} "
            f"nodes, {args.clients} concurrent clients",
        ))
        verdict = "ok" if report["ok"] else "FAILED"
        print(f"selftest {verdict}: every reply checked bitwise "
              "against its solo run")
        if args.out:
            print(f"report written to {args.out}")
        return 0 if report["ok"] else 1

    if args.matrix is not None:
        from repro.io.matrix_market import read_matrix_market

        try:
            matrix = read_matrix_market(args.matrix)
        except OSError as exc:
            raise ValidationError(
                f"cannot read {args.matrix!r}: {exc}"
            ) from exc
        import os

        name = args.name or os.path.splitext(
            os.path.basename(args.matrix)
        )[0]
    else:
        from repro.graphs.rmat import rmat_graph

        matrix = rmat_graph(args.nodes, args.edges, seed=args.seed)
        name = args.name or "rmat"
    from repro.obs import metrics as obs_metrics

    obs_metrics.enable()  # the stats op should report real SLA numbers
    service = QueryService(
        window_seconds=args.window_ms / 1e3,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        max_warm=args.max_warm,
    )
    service.register(
        name, matrix,
        n_shards=args.shards, shard_mode=args.shard_mode,
        tune=args.tune, tune_options=None,
    )

    async def main_loop():
        server = await serve_tcp(service, host=args.host, port=args.port)
        bound = server.sockets[0].getsockname()
        print(f"serving graph {name!r} (shape {matrix.shape}, "
              f"nnz {matrix.nnz:,}) on {bound[0]}:{bound[1]}")
        print('protocol: one JSON object per line, e.g. '
              '{"graph": "%s", "algorithm": "ppr", "seed": 0}' % name)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main_loop())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.close()
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "formats": _cmd_formats,
    "spmv": _cmd_spmv,
    "pagerank": _cmd_pagerank,
    "autotune": _cmd_autotune,
    "info": _cmd_info,
    "profile": _cmd_profile,
    "tune": _cmd_tune,
    "chaos": _cmd_chaos,
    "fit": _cmd_fit,
    "scenarios": _cmd_scenarios,
    "update": _cmd_update,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
