"""Chung–Lu expected-degree power-law graph generator.

Endpoints of every edge are drawn i.i.d. proportional to per-vertex
weights.  With Zipf-like weights ``w_i ∝ (i + i0)^(-1/(γ-1))`` the
realised in- and out-degree distributions follow a power law with
exponent γ, giving direct control over the skew — useful for matching a
named dataset's degree statistics and for the "how power-law must the
matrix be?" ablations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix

__all__ = ["chung_lu_graph", "powerlaw_weights"]


def powerlaw_weights(
    n: int, exponent: float, *, offset: float = 1.0
) -> np.ndarray:
    """Zipf-like weight sequence yielding degree exponent ``exponent``.

    ``exponent`` is the γ of the degree CCDF ``P(deg > k) ~ k^{-(γ-1)}``;
    web graphs typically have γ ≈ 2.1–2.7.  ``offset`` flattens the head
    (larger offset → milder hubs).
    """
    if n < 1:
        raise ValidationError("n must be >= 1")
    if exponent <= 1.0:
        raise ValidationError(f"exponent must exceed 1, got {exponent}")
    ranks = np.arange(n, dtype=np.float64) + offset
    return ranks ** (-1.0 / (exponent - 1.0))


def chung_lu_graph(
    n_nodes: int,
    n_edges: int,
    *,
    exponent: float = 2.2,
    offset: float = 1.0,
    seed: int = 0,
    allow_self_loops: bool = False,
    shuffle_labels: bool = True,
) -> COOMatrix:
    """Adjacency matrix of a directed Chung–Lu power-law graph.

    Parameters
    ----------
    n_nodes, n_edges:
        Target size.  Duplicate edges collapse, so the realised edge
        count is slightly below ``n_edges`` for dense/skewed settings.
    exponent:
        Power-law exponent γ of the degree distributions.
    offset:
        Head flattening of the weight sequence.
    shuffle_labels:
        Randomly relabel vertices so that vertex id carries no degree
        information (real crawls are not degree-sorted; the paper's
        reordering step must actually do work).
    """
    if n_edges < 0:
        raise ValidationError("n_edges must be non-negative")
    rng = np.random.default_rng(seed)
    weights = powerlaw_weights(n_nodes, exponent, offset=offset)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    src = np.searchsorted(cdf, rng.random(n_edges), side="right")
    dst = np.searchsorted(cdf, rng.random(n_edges), side="right")
    src = np.minimum(src, n_nodes - 1)
    dst = np.minimum(dst, n_nodes - 1)
    if shuffle_labels:
        relabel = rng.permutation(n_nodes)
        src, dst = relabel[src], relabel[dst]
    if not allow_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    return COOMatrix.from_edges(src, dst, (n_nodes, n_nodes))
