"""Named dataset registry: scaled analogues of the paper's Tables 2 & 3.

The paper's matrices cannot be redistributed, so each name maps to a
synthetic generator whose *structure* (power-law exponent, average
degree, shape, skew) matches the published statistics, scaled down by a
configurable factor (default 10x for Table 2 graphs, 5x for the
unstructured matrices, 400x for the Table 3 web crawls).

Scaling note: the simulated device keeps its true 256 KB texture cache,
so a 10x-scaled Flickr still spans several 64K-column tiles and the
tiling machinery is exercised exactly as at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.graphs.chung_lu import chung_lu_graph
from repro.graphs.synthetic import (
    circuit_matrix,
    dense_matrix,
    fem_matrix,
    lp_matrix,
    protein_matrix,
)

__all__ = [
    "Dataset",
    "DatasetSpec",
    "POWER_LAW_GRAPHS",
    "UNSTRUCTURED_MATRICES",
    "WEB_GRAPHS",
    "list_datasets",
    "load",
    "matched_cpu",
    "matched_device",
]


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: the matrix plus its provenance metadata."""

    name: str
    matrix: COOMatrix
    kind: str
    power_law: bool
    #: (rows, cols, nnz) of the original dataset in the paper.
    paper_shape: tuple[int, int, int]
    scale: float

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name!r}, shape={self.matrix.shape}, "
            f"nnz={self.nnz}, kind={self.kind!r})"
        )


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: how to build a named dataset at a given scale."""

    name: str
    kind: str
    power_law: bool
    paper_rows: int
    paper_cols: int
    paper_nnz: int
    default_scale: float
    builder: Callable[[float, int], COOMatrix]
    notes: str = ""


def _graph_builder(
    paper_nodes: int, paper_edges: int, *, exponent: float, offset: float
) -> Callable[[float, int], COOMatrix]:
    """Chung–Lu builder matched to a paper graph's size and skew."""

    def build(scale: float, seed: int) -> COOMatrix:
        n = max(64, int(paper_nodes / scale))
        # Draw extra edges to compensate for duplicate collapse.
        m = int(paper_edges / scale * 1.15)
        return chung_lu_graph(
            n, m, exponent=exponent, offset=offset, seed=seed
        )

    return build


# ----------------------------------------------------------------------
# Table 2: power-law graphs
# ----------------------------------------------------------------------
# Exponent/offset choices: Flickr/LiveJournal/Wikipedia are heavy-hub
# social/web graphs (strong skew); Webbase and Youtube have low non-zeros
# per row/column, which is exactly why the paper's optimizations gain
# less there (§4.1).

POWER_LAW_GRAPHS: dict[str, DatasetSpec] = {
    "webbase": DatasetSpec(
        "webbase", "power-law-graph", True, 1_000_000, 1_000_000, 3_105_536,
        10.0, _graph_builder(1_000_000, 3_105_536, exponent=2.4, offset=4.0),
        "small web crawl; ~3 nnz/col, little x reuse",
    ),
    "flickr": DatasetSpec(
        "flickr", "power-law-graph", True, 1_715_255, 1_715_255, 22_613_981,
        10.0, _graph_builder(1_715_255, 22_613_981, exponent=2.05, offset=2.0),
        "social links; strong hubs",
    ),
    "livejournal": DatasetSpec(
        "livejournal", "power-law-graph", True,
        5_204_176, 5_204_176, 77_402_652,
        10.0, _graph_builder(5_204_176, 77_402_652, exponent=2.1, offset=2.0),
        "largest single-GPU graph",
    ),
    "wikipedia": DatasetSpec(
        "wikipedia", "power-law-graph", True,
        1_870_709, 1_870_709, 39_953_145,
        10.0, _graph_builder(1_870_709, 39_953_145, exponent=2.05, offset=2.0),
        "page links; strong hubs",
    ),
    "youtube": DatasetSpec(
        "youtube", "power-law-graph", True, 1_138_499, 1_138_499, 4_942_297,
        10.0, _graph_builder(1_138_499, 4_942_297, exponent=2.5, offset=4.0),
        "small and sparse; kernels near parity (§4.1)",
    ),
}

# ----------------------------------------------------------------------
# Table 2: unstructured matrices from NVIDIA's SpMV suite
# ----------------------------------------------------------------------

UNSTRUCTURED_MATRICES: dict[str, DatasetSpec] = {
    "dense": DatasetSpec(
        "dense", "unstructured", False, 2_000, 2_000, 4_000_000, 5.0,
        lambda scale, seed: dense_matrix(max(32, int(2_000 / scale)), seed=seed),
        "bandwidth-ceiling benchmark",
    ),
    "circuit": DatasetSpec(
        "circuit", "unstructured", False, 170_998, 170_998, 958_936, 5.0,
        lambda scale, seed: circuit_matrix(
            max(64, int(170_998 / scale)), int(958_936 / scale), seed=seed
        ),
        "uniform random, ~6 nnz/row",
    ),
    "fem-harbor": DatasetSpec(
        "fem-harbor", "unstructured", False, 46_835, 46_835, 2_374_001, 5.0,
        lambda scale, seed: fem_matrix(
            max(64, int(46_835 / scale)),
            nnz_per_row=max(4, int(2_374_001 / 46_835)),
            seed=seed,
        ),
        "banded mesh, ~50 nnz/row",
    ),
    "lp": DatasetSpec(
        "lp", "unstructured", False, 4_284, 1_092_610, 11_279_748, 5.0,
        lambda scale, seed: lp_matrix(
            max(16, int(4_284 / scale)),
            max(256, int(1_092_610 / scale)),
            int(11_279_748 / scale),
            seed=seed,
        ),
        "rectangular, ~2600 nnz/row",
    ),
    "protein": DatasetSpec(
        "protein", "unstructured", False, 36_417, 36_417, 4_344_765, 5.0,
        lambda scale, seed: protein_matrix(
            max(64, int(36_417 / scale)), block_size=32, seed=seed
        ),
        "dense diagonal blocks",
    ),
}

# ----------------------------------------------------------------------
# Table 3: web graphs for the multi-GPU experiments
# ----------------------------------------------------------------------

WEB_GRAPHS: dict[str, DatasetSpec] = {
    "it-2004": DatasetSpec(
        "it-2004", "web-graph", True,
        41_291_594, 41_291_594, 1_150_725_436,
        400.0,
        _graph_builder(41_291_594, 1_150_725_436, exponent=2.1, offset=2.0),
        "fits on 1 GPU at paper scale",
    ),
    "sk-2005": DatasetSpec(
        "sk-2005", "web-graph", True,
        50_636_154, 50_636_154, 1_949_412_601,
        400.0,
        _graph_builder(50_636_154, 1_949_412_601, exponent=2.05, offset=2.0),
        "needs >= 3 GPUs at paper scale",
    ),
    "uk-union": DatasetSpec(
        "uk-union", "web-graph", True,
        133_633_040, 133_633_040, 5_507_679_822,
        400.0,
        _graph_builder(133_633_040, 5_507_679_822, exponent=2.05, offset=2.0),
        "needs >= 6 GPUs at paper scale",
    ),
    "web-2001": DatasetSpec(
        "web-2001", "web-graph", True,
        118_142_155, 118_142_155, 1_019_903_190,
        400.0,
        _graph_builder(118_142_155, 1_019_903_190, exponent=2.15, offset=3.0),
        "sparse large crawl",
    ),
}

_ALL_SPECS: dict[str, DatasetSpec] = {
    **POWER_LAW_GRAPHS,
    **UNSTRUCTURED_MATRICES,
    **WEB_GRAPHS,
}


def list_datasets(kind: str | None = None) -> list[str]:
    """Names of registered datasets, optionally filtered by kind."""
    if kind is None:
        return sorted(_ALL_SPECS)
    return sorted(
        name for name, spec in _ALL_SPECS.items() if spec.kind == kind
    )


def load(
    name: str, *, scale: float | None = None, seed: int = 7
) -> Dataset:
    """Build a named dataset at the given down-scale factor.

    ``scale`` divides the original node/edge counts; larger is smaller.
    ``scale=None`` uses the spec's default (10x graphs, 5x matrices,
    400x web crawls).
    """
    key = name.lower()
    if key not in _ALL_SPECS:
        raise ValidationError(
            f"unknown dataset {name!r}; known: {sorted(_ALL_SPECS)}"
        )
    spec = _ALL_SPECS[key]
    scale = spec.default_scale if scale is None else float(scale)
    if scale <= 0:
        raise ValidationError("scale must be positive")
    matrix = spec.builder(scale, seed)
    return Dataset(
        name=spec.name,
        matrix=matrix,
        kind=spec.kind,
        power_law=spec.power_law,
        paper_shape=(spec.paper_rows, spec.paper_cols, spec.paper_nnz),
        scale=scale,
    )


def matched_device(dataset: Dataset, base=None):
    """A device whose cache/overheads are scaled like the dataset.

    The paper's behaviour depends on *ratios*: how much larger the
    ``x`` working set is than the texture cache, and how large a tile's
    work is relative to the launch overhead.  A dataset scaled down by
    ``s`` paired with an unscaled device would see almost no cache
    misses and launch-dominated tiles.  This helper divides the texture
    cache, the launch overhead and the memory capacity by the dataset's
    scale so those ratios match the paper's testbed; compute and
    bandwidth stay untouched (they set the absolute GFLOPS axis).
    """
    from repro.gpu.spec import DeviceSpec

    base = base or DeviceSpec.tesla_c1060()
    s = max(1.0, float(dataset.scale))
    line = base.texture_line_bytes
    cache = max(4 * line, int(base.texture_cache_bytes / s) // line * line)
    return base.scaled(
        name=f"{base.name}-x{s:g}",
        texture_cache_bytes=cache,
        kernel_launch_seconds=base.kernel_launch_seconds / s,
        global_memory_bytes=max(1 << 20, int(base.global_memory_bytes / s)),
        # Scaling the latency keeps the Little's-law saturation point
        # (warps needed for peak bandwidth) proportional to per-tile
        # warp counts, which shrink with the dataset.
        global_latency_cycles=max(20.0, base.global_latency_cycles / s),
    )


def matched_cpu(dataset: Dataset, base=None):
    """CPU sheet with its L2 cache scaled like the dataset.

    Same rationale as :func:`matched_device`: the CPU baseline's pain on
    power-law matrices is ``x`` gathers missing L2, which only shows if
    the working-set-to-cache ratio matches the paper's full-size runs.
    """
    from repro.gpu.spec import CPUSpec

    base = base or CPUSpec.opteron_2218()
    from dataclasses import replace

    s = max(1.0, float(dataset.scale))
    line = base.cache_line_bytes
    cache = max(8 * line, int(base.l2_cache_bytes / s) // line * line)
    return replace(base, name=f"{base.name}-x{s:g}", l2_cache_bytes=cache)
