"""Synthetic dataset substrate.

The paper evaluates on proprietary crawls (Flickr, LiveJournal,
Wikipedia, Youtube, Webbase; it-2004, sk-2005, uk-union, web-2001) and
on unstructured matrices from NVIDIA's SpMV suite.  None of those can be
shipped here, so this package generates structural analogues:

* :mod:`repro.graphs.rmat` — recursive-matrix (R-MAT) power-law graphs,
* :mod:`repro.graphs.chung_lu` — expected-degree-sequence power-law
  graphs with controllable exponent,
* :mod:`repro.graphs.synthetic` — dense / circuit / FEM / LP / protein
  matrix analogues,
* :mod:`repro.graphs.datasets` — a registry mapping the paper's dataset
  names to scaled generators with matched shape statistics,
* :mod:`repro.graphs.stats` — power-law fitting and skew diagnostics
  used to validate that the analogues have the structure the paper's
  optimisations exploit.
"""

from repro.graphs import datasets, stats
from repro.graphs.chung_lu import chung_lu_graph, powerlaw_weights
from repro.graphs.datasets import Dataset, list_datasets, load, matched_device
from repro.graphs.rmat import rmat_edges, rmat_graph
from repro.graphs.synthetic import (
    circuit_matrix,
    dense_matrix,
    fem_matrix,
    lp_matrix,
    protein_matrix,
)

__all__ = [
    "Dataset",
    "chung_lu_graph",
    "circuit_matrix",
    "datasets",
    "dense_matrix",
    "fem_matrix",
    "list_datasets",
    "load",
    "lp_matrix",
    "matched_device",
    "powerlaw_weights",
    "protein_matrix",
    "rmat_edges",
    "rmat_graph",
    "stats",
]
