"""Synthetic dataset substrate.

The paper evaluates on proprietary crawls (Flickr, LiveJournal,
Wikipedia, Youtube, Webbase; it-2004, sk-2005, uk-union, web-2001) and
on unstructured matrices from NVIDIA's SpMV suite.  None of those can be
shipped here, so this package generates structural analogues:

* :mod:`repro.graphs.rmat` — recursive-matrix (R-MAT) power-law graphs,
* :mod:`repro.graphs.chung_lu` — expected-degree-sequence power-law
  graphs with controllable exponent,
* :mod:`repro.graphs.synthetic` — dense / circuit / FEM / LP / protein
  matrix analogues,
* :mod:`repro.graphs.datasets` — a registry mapping the paper's dataset
  names to scaled generators with matched shape statistics,
* :mod:`repro.graphs.stats` — power-law fitting and skew diagnostics
  used to validate that the analogues have the structure the paper's
  optimisations exploit,
* :mod:`repro.graphs.fit` — declarative :class:`ScenarioSpec`: fit the
  structure of any real matrix, serialise it as JSON, regenerate
  seeded synthetic twins at any scale,
* :mod:`repro.graphs.scenarios` — the curated scenario corpus (base +
  adversarial structure long tail) that the differential/chaos/tuner
  sweeps and ``bench_scenarios.py`` run over.
"""

from repro.graphs import datasets, scenarios, stats
from repro.graphs.chung_lu import chung_lu_graph, powerlaw_weights
from repro.graphs.datasets import Dataset, list_datasets, load, matched_device
from repro.graphs.dynamic import (
    DynamicMatrix,
    OverlayPlan,
    seeded_update_stream,
)
from repro.graphs.fit import ScenarioSpec, fit, generate
from repro.graphs.rmat import rmat_edges, rmat_graph
from repro.graphs.scenarios import (
    adversarial_names,
    corpus,
    generate_scenario,
    get_scenario,
    scenario_names,
)
from repro.graphs.synthetic import (
    circuit_matrix,
    dense_matrix,
    fem_matrix,
    lp_matrix,
    protein_matrix,
)

__all__ = [
    "Dataset",
    "DynamicMatrix",
    "OverlayPlan",
    "ScenarioSpec",
    "adversarial_names",
    "chung_lu_graph",
    "circuit_matrix",
    "corpus",
    "datasets",
    "dense_matrix",
    "fem_matrix",
    "fit",
    "generate",
    "generate_scenario",
    "get_scenario",
    "list_datasets",
    "load",
    "lp_matrix",
    "matched_device",
    "powerlaw_weights",
    "protein_matrix",
    "rmat_edges",
    "rmat_graph",
    "scenario_names",
    "seeded_update_stream",
    "scenarios",
    "stats",
]
