"""Unstructured (non-power-law) matrix analogues.

Stand-ins for the six matrices of the paper's Table 2 that come from
NVIDIA's SpMV suite (Appendix D, Figure 7).  Each generator reproduces
the structural trait that drives its kernel behaviour:

* **dense** — a fully dense block; the bandwidth ceiling benchmark.
* **circuit** — uniform random sparsity, ~5–6 nnz/row, no skew.
* **FEM/Harbor** — a 3-D mesh stencil: banded, ~50 nnz/row, very regular.
* **LP** — short-and-fat rectangular with long uniform rows
  (~2 500 nnz/row), the CSR-vector sweet spot.
* **protein** — dense blocks along the diagonal plus random coupling,
  ~110 nnz/row.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix

__all__ = [
    "banded_matrix",
    "circuit_matrix",
    "dense_matrix",
    "fem_matrix",
    "lp_matrix",
    "protein_matrix",
    "uniform_random_matrix",
]


def dense_matrix(n: int, *, seed: int = 0) -> COOMatrix:
    """A fully dense ``n x n`` matrix with random values."""
    if n < 1:
        raise ValidationError("n must be >= 1")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), n)
    cols = np.tile(np.arange(n), n)
    data = rng.random(n * n) + 0.5
    return COOMatrix(rows, cols, data, (n, n))


def uniform_random_matrix(
    n_rows: int, n_cols: int, nnz: int, *, seed: int = 0
) -> COOMatrix:
    """Uniformly random sparse matrix (no degree skew)."""
    if nnz < 0:
        raise ValidationError("nnz must be non-negative")
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, size=nnz)
    cols = rng.integers(0, n_cols, size=nnz)
    data = rng.random(nnz) + 0.5
    return COOMatrix.from_unsorted(rows, cols, data, (n_rows, n_cols))


def circuit_matrix(n: int, nnz: int, *, seed: int = 0) -> COOMatrix:
    """Circuit-simulation analogue: uniform random + nonzero diagonal."""
    base = uniform_random_matrix(n, n, max(0, nnz - n), seed=seed)
    diag = np.arange(n)
    rng = np.random.default_rng(seed + 1)
    return COOMatrix.from_unsorted(
        np.concatenate([base.rows, diag]),
        np.concatenate([base.cols, diag]),
        np.concatenate([base.data, rng.random(n) + 1.0]),
        (n, n),
    )


def banded_matrix(
    n: int, half_bandwidth: int, nnz_per_row: int, *, seed: int = 0
) -> COOMatrix:
    """Random entries confined to a band around the diagonal."""
    if half_bandwidth < 0 or nnz_per_row < 1:
        raise ValidationError("bad band parameters")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nnz_per_row)
    offsets = rng.integers(-half_bandwidth, half_bandwidth + 1, rows.size)
    cols = np.clip(rows + offsets, 0, n - 1)
    data = rng.random(rows.size) + 0.5
    return COOMatrix.from_unsorted(rows, cols, data, (n, n))


def fem_matrix(n: int, *, nnz_per_row: int = 50, seed: int = 0) -> COOMatrix:
    """FEM/Harbor analogue: narrow band, ~50 entries per row on average.

    Real mesh matrices have *variable* row lengths (boundary vs interior
    elements; FEM/Harbor spans a few to ~145 per row), which is what
    defeats pure ELL there: padding to the longest row costs ~3x.
    """
    if nnz_per_row < 1:
        raise ValidationError("nnz_per_row must be >= 1")
    half_bw = max(4, int(np.sqrt(n)))
    rng = np.random.default_rng(seed)
    # Log-normal row lengths clipped to [1, ~3x mean].
    lengths = rng.lognormal(
        mean=np.log(max(nnz_per_row, 2)), sigma=0.45, size=n
    )
    lengths = np.clip(lengths.astype(np.int64), 1, 3 * nnz_per_row)
    rows = np.repeat(np.arange(n), lengths)
    offsets = rng.integers(-half_bw, half_bw + 1, rows.size)
    cols = np.clip(rows + offsets, 0, n - 1)
    data = rng.random(rows.size) + 0.5
    return COOMatrix.from_unsorted(rows, cols, data, (n, n))


def lp_matrix(
    n_rows: int, n_cols: int, nnz: int, *, seed: int = 0
) -> COOMatrix:
    """Linear-programming analogue: few very long, uniform rows."""
    if n_rows < 1 or n_cols < 1:
        raise ValidationError("shape must be positive")
    rng = np.random.default_rng(seed)
    per_row = max(1, nnz // n_rows)
    rows = np.repeat(np.arange(n_rows), per_row)
    cols = rng.integers(0, n_cols, size=rows.size)
    data = rng.random(rows.size) + 0.5
    return COOMatrix.from_unsorted(rows, cols, data, (n_rows, n_cols))


def protein_matrix(
    n: int, *, block_size: int = 32, fill: float = 0.9,
    nnz_random: int | None = None, seed: int = 0,
) -> COOMatrix:
    """Protein-interaction analogue: dense diagonal blocks + coupling.

    Block sizes vary (protein domains are not uniform), so row lengths
    spread over roughly a 4x range.
    """
    if block_size < 1:
        raise ValidationError("block_size must be >= 1")
    rng = np.random.default_rng(seed)
    rows_list, cols_list = [], []
    start = 0
    while start < n:
        size = int(rng.integers(block_size // 2, 2 * block_size + 1))
        size = min(size, n - start)
        rr = np.repeat(np.arange(size), size)
        cc = np.tile(np.arange(size), size)
        keep = rng.random(rr.size) < fill
        rows_list.append(start + rr[keep])
        cols_list.append(start + cc[keep])
        start += size
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    if nnz_random is None:
        nnz_random = rows.size // 4
    rows = np.concatenate([rows, rng.integers(0, n, nnz_random)])
    cols = np.concatenate([cols, rng.integers(0, n, nnz_random)])
    data = rng.random(rows.size) + 0.5
    return COOMatrix.from_unsorted(rows, cols, data, (n, n))
