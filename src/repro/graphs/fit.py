"""Scenario specs: fit structural distributions, generate synthetic twins.

The paper's central claim is that the right SpMV kernel depends on the
matrix's *structure* — degree skew, bandedness, blocks, hubs (§5 picks
per-matrix).  The hand-written generators in :mod:`repro.graphs`
cover seven structural families; production means thousands.  This
module closes the gap with a declarative **scenario spec**:

* :func:`fit` estimates a :class:`ScenarioSpec` from any
  :class:`~repro.formats.base.SparseMatrix` or ``.mtx`` file — degree
  power-law exponents (via :func:`repro.graphs.stats.powerlaw_mle`),
  bandedness, disconnected components, symmetry, hub shares, skew;
* :func:`generate` turns a spec back into a seeded, bit-reproducible
  synthetic twin at any scale;
* specs serialise to JSON (:meth:`ScenarioSpec.to_json`) and load back
  with **loud validation** — a hand-edited or corrupt spec fails with
  :class:`~repro.errors.ValidationError` before a single entry is
  generated, never mid-generate.

The curated corpus in :mod:`repro.graphs.scenarios` is expressed
entirely as spec data; the differential/chaos/tuner sweeps and
``benchmarks/bench_scenarios.py`` run over generated twins.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.graphs import stats

__all__ = [
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "fit",
    "generate",
    "spec_seed",
]

#: Bump when the spec field set changes incompatibly; loaders reject
#: unknown versions loudly instead of mis-generating.
SCHEMA_VERSION = 1

#: A fitted exponent only counts as "power-law" when the skew supports
#: it; below this Gini the degree sequence is effectively uniform and
#: the MLE value is noise.
_POWER_LAW_MIN_GINI = 0.35

#: Hub shares below this are ordinary skew, not a deliberate hub — a
#: heavy power-law head alone can reach ~0.12 of the entries.
_HUB_MIN_SHARE = 0.15

#: Fitted bandedness below this is indistinguishable from random
#: placement; the spec records "not banded".
_BANDED_MIN_FRACTION = 0.15


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative structural description of one sparse-matrix workload.

    Every field is generative: :func:`generate` realises the spec with
    a seeded RNG, and :func:`fit` estimates the same fields from a real
    matrix, so ``fit(generate(spec))`` recovers the spec within
    statistical tolerance.  ``row_gini``/``col_gini`` are fitted
    diagnostics carried for reporting; generation derives its skew from
    the exponents and hub shares.

    Parameters
    ----------
    name:
        Free-form label (corpus key / provenance).
    n_rows, n_cols, nnz:
        Target shape and stored-entry count at scale 1.
    row_exponent, col_exponent:
        Power-law exponent γ of the degree distribution on that axis,
        or ``None`` for a near-uniform (non-power-law) axis.
    bandedness:
        Fraction of entries placed within ``half_bandwidth`` of the
        (aspect-corrected) diagonal; 0 disables the band.
    half_bandwidth:
        Band half-width in column units at scale 1.
    n_components:
        Number of disconnected block-diagonal components.
    symmetry:
        Fraction of off-diagonal entries whose transposed partner is
        also stored (square matrices only).
    empty_row_fraction:
        Fraction of rows forced to hold no entries at all.
    hub_row_share, hub_col_share:
        Fraction of all entries deliberately concentrated in one hub
        row / column (on top of the exponent-driven skew).
    row_gini, col_gini:
        Fitted Gini coefficients of the degree sequences (diagnostic).
    tags:
        Free-form labels; the corpus marks ``"adversarial"`` here.
    """

    name: str
    n_rows: int
    n_cols: int
    nnz: int
    row_exponent: float | None = None
    col_exponent: float | None = None
    bandedness: float = 0.0
    half_bandwidth: int = 0
    n_components: int = 1
    symmetry: float = 0.0
    empty_row_fraction: float = 0.0
    hub_row_share: float = 0.0
    hub_col_share: float = 0.0
    row_gini: float | None = None
    col_gini: float | None = None
    tags: tuple = ()
    schema: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValidationError` on any inconsistent field."""
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("spec name must be a non-empty string")
        if self.schema != SCHEMA_VERSION:
            raise ValidationError(
                f"spec schema {self.schema!r} is not the supported "
                f"version {SCHEMA_VERSION}"
            )
        for field in ("n_rows", "n_cols", "nnz", "half_bandwidth",
                      "n_components"):
            value = getattr(self, field)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValidationError(
                    f"{field} must be an integer, got {value!r}"
                )
        if self.n_rows < 1 or self.n_cols < 1:
            raise ValidationError(
                f"shape must be positive, got "
                f"({self.n_rows}, {self.n_cols})"
            )
        if self.nnz < 0:
            raise ValidationError(f"nnz must be >= 0, got {self.nnz}")
        if self.half_bandwidth < 0:
            raise ValidationError("half_bandwidth must be >= 0")
        if not 1 <= self.n_components <= min(self.n_rows, self.n_cols):
            raise ValidationError(
                f"n_components must be in [1, min(shape)], got "
                f"{self.n_components}"
            )
        for field in ("bandedness", "symmetry", "empty_row_fraction",
                      "hub_row_share", "hub_col_share"):
            value = getattr(self, field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValidationError(
                    f"{field} must be a number, got {value!r}"
                )
            if not 0.0 <= float(value) <= 1.0:
                raise ValidationError(
                    f"{field} must be in [0, 1], got {value!r}"
                )
        for field in ("row_exponent", "col_exponent"):
            value = getattr(self, field)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValidationError(
                    f"{field} must be a number or null, got {value!r}"
                )
            if not np.isfinite(value) or value <= 1.0:
                raise ValidationError(
                    f"{field} must be a finite exponent > 1, got {value!r}"
                )
        for field in ("row_gini", "col_gini"):
            value = getattr(self, field)
            if value is not None and not (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and 0.0 <= float(value) <= 1.0
            ):
                raise ValidationError(
                    f"{field} must be null or in [0, 1], got {value!r}"
                )
        if self.symmetry > 0 and self.n_rows != self.n_cols:
            raise ValidationError(
                "symmetry requires a square shape, got "
                f"({self.n_rows}, {self.n_cols})"
            )
        if self.bandedness > 0 and self.half_bandwidth < 1:
            raise ValidationError(
                "a banded spec needs half_bandwidth >= 1"
            )
        if self.empty_row_fraction >= 1.0 and self.nnz > 0:
            raise ValidationError(
                "empty_row_fraction 1.0 leaves no row for any entry"
            )
        if not isinstance(self.tags, (tuple, list)) or not all(
            isinstance(t, str) for t in self.tags
        ):
            raise ValidationError("tags must be a sequence of strings")
        object.__setattr__(self, "tags", tuple(self.tags))

    @property
    def density(self) -> float:
        """Target stored-entry fraction (derived, not stored twice)."""
        return self.nnz / (self.n_rows * self.n_cols)

    @property
    def adversarial(self) -> bool:
        return "adversarial" in self.tags

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["tags"] = list(self.tags)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Build from a dict with **loud** rejection of unknown keys.

        A mistyped field name in a hand-edited spec would otherwise be
        silently dropped and generate the wrong structure.
        """
        if not isinstance(payload, dict):
            raise ValidationError(
                f"spec payload must be an object, got "
                f"{type(payload).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(
                f"spec has unknown field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        data = dict(payload)
        if "tags" in data:
            tags = data["tags"]
            if not isinstance(tags, (list, tuple)):
                raise ValidationError(
                    f"tags must be a list, got {tags!r}"
                )
            data["tags"] = tuple(tags)
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValidationError(f"malformed spec: {exc}") from exc

    def to_json(self, path: str | Path | None = None) -> str:
        """Canonical JSON (sorted keys); optionally written to a file."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, text_or_path: str | Path) -> "ScenarioSpec":
        """Parse a spec from a JSON string or file path, loudly."""
        if isinstance(text_or_path, Path) or (
            isinstance(text_or_path, str)
            and not text_or_path.lstrip().startswith("{")
        ):
            try:
                text = Path(text_or_path).read_text(encoding="utf-8")
            except OSError as exc:
                raise ValidationError(
                    f"cannot read spec file {text_or_path!r}: {exc}"
                ) from exc
        else:
            text = text_or_path
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ValidationError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def canonical_crc(self) -> int:
        """CRC32 of the canonical JSON — the spec's structural hash."""
        return zlib.crc32(
            json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        )

    def scaled(self, scale: float) -> tuple[int, int, int, int]:
        """``(n_rows, n_cols, nnz, half_bandwidth)`` at ``scale``."""
        if not np.isfinite(scale) or scale <= 0:
            raise ValidationError(f"scale must be positive, got {scale!r}")
        n_rows = max(self.n_components, int(round(self.n_rows * scale)))
        n_cols = max(self.n_components, int(round(self.n_cols * scale)))
        nnz = int(round(self.nnz * scale))
        hb = max(1, int(round(self.half_bandwidth * scale))) \
            if self.bandedness > 0 else 0
        return n_rows, n_cols, nnz, hb


def spec_seed(spec: ScenarioSpec, seed: int) -> list[int]:
    """Deterministic RNG seed material for one (spec, seed) pair.

    Mixing the spec's canonical CRC in means two different specs never
    share an entry stream even under the same user seed, while the same
    spec regenerates bit-identically across processes.
    """
    return [int(seed) & 0xFFFFFFFF, spec.canonical_crc()]


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _axis_weights(
    n: int,
    exponent: float | None,
    hub_share: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-index sampling probabilities for one axis of one component."""
    if exponent is not None:
        ranks = np.arange(n, dtype=np.float64) + 1.0
        weights = ranks ** (-1.0 / (exponent - 1.0))
        # Shuffle labels: index must carry no degree information, like
        # real crawls (and like chung_lu_graph's shuffle_labels).
        rng.shuffle(weights)
    else:
        weights = np.ones(n, dtype=np.float64)
    if hub_share > 0 and n > 1:
        hub = int(rng.integers(0, n))
        weights *= (1.0 - hub_share) / weights.sum()
        weights[hub] += hub_share
    return weights / weights.sum()


def _draw(
    prob: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """``size`` seeded draws from a categorical distribution."""
    cdf = np.cumsum(prob)
    cdf[-1] = 1.0
    return np.searchsorted(cdf, rng.random(size), side="right").astype(
        np.int64
    )


def _component_model(
    spec: ScenarioSpec,
    n_rows: int,
    n_cols: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Frozen per-component sampling distributions.

    Built exactly once per component so the top-up rounds of
    :func:`generate` redraw *entries* from the same model — the hub
    index, the silenced rows and the shuffled power-law labels must not
    move between rounds or the structure dilutes.
    """
    row_prob = _axis_weights(
        n_rows, spec.row_exponent, spec.hub_row_share, rng
    )
    if spec.empty_row_fraction > 0 and n_rows > 1:
        n_empty = min(
            int(round(spec.empty_row_fraction * n_rows)), n_rows - 1
        )
        if n_empty:
            silenced = rng.choice(n_rows, size=n_empty, replace=False)
            row_prob[silenced] = 0.0
            row_prob /= row_prob.sum()
    col_prob = _axis_weights(
        n_cols, spec.col_exponent, spec.hub_col_share, rng
    )
    return row_prob, col_prob


def _component_entries(
    spec: ScenarioSpec,
    row_prob: np.ndarray,
    col_prob: np.ndarray,
    nnz: int,
    hb: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Entry coordinates for one component (local indices)."""
    n_rows, n_cols = row_prob.size, col_prob.size
    if nnz <= 0 or n_rows == 0 or n_cols == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    mirror_count = (
        int(round(nnz * spec.symmetry / 2.0)) if n_rows == n_cols else 0
    )
    base_count = max(1, nnz - mirror_count)

    rows = _draw(row_prob, base_count, rng)
    cols = _draw(col_prob, base_count, rng)
    if spec.bandedness > 0:
        in_band = rng.random(base_count) < spec.bandedness
        aspect = n_cols / n_rows
        centers = np.floor(rows[in_band] * aspect).astype(np.int64)
        offsets = rng.integers(-hb, hb + 1, size=int(in_band.sum()))
        cols[in_band] = np.clip(centers + offsets, 0, n_cols - 1)
    if mirror_count:
        off_diag = np.flatnonzero(rows != cols)
        if off_diag.size:
            picked = rng.choice(
                off_diag,
                size=min(mirror_count, off_diag.size),
                replace=False,
            )
            mirrored_rows = cols[picked].copy()
            mirrored_cols = rows[picked].copy()
            rows = np.concatenate([rows, mirrored_rows])
            cols = np.concatenate([cols, mirrored_cols])
    return rows, cols


def generate(
    spec: ScenarioSpec, *, scale: float = 1.0, seed: int = 0
) -> COOMatrix:
    """Realise a spec as a seeded, bit-reproducible COO matrix.

    The same ``(spec, scale, seed)`` triple yields a bit-identical
    matrix on every call and every host.  Coordinates are drawn from
    the spec's degree/band/hub model, deduplicated, topped up, and
    finally thinned uniformly — so the realised nnz tracks the target
    closely without biasing the structure.
    """
    spec.validate()
    n_rows, n_cols, nnz, hb = spec.scaled(scale)
    rng = np.random.default_rng(spec_seed(spec, seed) + [0])

    # Deal rows/cols/nnz over block-diagonal components.  Components
    # are contiguous index ranges, so disconnectedness is structural.
    k = min(spec.n_components, n_rows, n_cols)
    row_edges = np.linspace(0, n_rows, k + 1).astype(np.int64)
    col_edges = np.linspace(0, n_cols, k + 1).astype(np.int64)
    rows_parts, cols_parts = [], []
    for c in range(k):
        r0, r1 = int(row_edges[c]), int(row_edges[c + 1])
        c0, c1 = int(col_edges[c]), int(col_edges[c + 1])
        target = nnz // k + (1 if c < nnz % k else 0)
        capacity = (r1 - r0) * (c1 - c0)
        target = min(target, capacity)
        if target <= 0:
            continue
        row_prob, col_prob = _component_model(spec, r1 - r0, c1 - c0, rng)
        # Top-up loop: dedup shrinks skewed draws; redraw until the
        # unique count reaches the target, then thin uniformly to
        # exactly target.  Stopping is progress-based: only a round
        # that adds nothing new means the structure is saturated (a
        # narrow band, a lone hub) and the shortfall is honest.  A
        # fixed small round cap is not — heavy hub mass can collide
        # away most of every draw yet still creep toward the target,
        # so the cap is only a generous runaway guard.
        # All rounds draw from the SAME frozen model above.
        keys: np.ndarray = np.array([], dtype=np.int64)
        for _round in range(64):
            need = target - keys.size
            if need <= 0:
                break
            r, cc = _component_entries(
                spec, row_prob, col_prob, max(need, target // 4), hb, rng
            )
            fresh = r * np.int64(c1 - c0) + cc
            before = keys.size
            keys = np.unique(np.concatenate([keys, fresh]))
            if keys.size == before:  # saturated: stop honestly
                break
        if keys.size > target:
            keys = rng.choice(keys, size=target, replace=False)
        rows_parts.append(keys // (c1 - c0) + r0)
        cols_parts.append(keys % (c1 - c0) + c0)
    if rows_parts:
        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
    else:
        rows = cols = np.array([], dtype=np.int64)
    data = rng.random(rows.size) + 0.5
    return COOMatrix.from_unsorted(
        rows, cols, data, (n_rows, n_cols), sum_duplicates=False
    )


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------


def _fit_exponent(lengths: np.ndarray) -> tuple[float | None, float]:
    """(power-law exponent or None, Gini) for one degree sequence.

    The gate uses the Gini of the *positive* degrees: a matrix that is
    60% empty rows with uniform live rows has a high overall Gini but
    no power law, and an exponent fitted there would be noise.  The
    MLE cutoff tracks the median positive degree so the estimate comes
    from the tail, where the discrete power law actually holds — a
    fixed ``k_min=2`` drags the exponent toward the non-power-law head.
    """
    gini = stats.gini(lengths)
    positive = lengths[lengths > 0]
    if positive.size < 2:
        return None, gini
    skew = stats.gini(positive)
    k_min = max(2, int(np.median(positive)))
    alpha = stats.powerlaw_mle(lengths, k_min=k_min)
    if (
        np.isfinite(alpha)
        and 1.0 < alpha < 8.0
        and skew > _POWER_LAW_MIN_GINI
    ):
        return float(alpha), gini
    return None, gini


def _fit_band(
    matrix: SparseMatrix, n_components: int = 1
) -> tuple[float, int]:
    """(bandedness, half_bandwidth) of the aspect-corrected diagonal.

    ``2 * median(|offset|)`` estimates the half-width of a uniform band
    (uniform ``|offset|`` on ``[0, hb]`` has median ``hb/2``); the
    in-band fraction is then corrected for how much of it random
    placement would produce anyway, so an unbanded matrix fits to ~0.

    Block-diagonal matrices concentrate offsets near the diagonal too;
    when the fitted half-width is a sizeable fraction of a component's
    own column span, the "band" is just the blocks and is not recorded
    (a real band inside blocks — staircase — is much narrower).
    """
    coo = matrix.to_coo()
    if coo.nnz == 0 or matrix.n_cols < 2:
        return 0.0, 0
    aspect = matrix.n_cols / matrix.n_rows
    offsets = np.abs(
        coo.cols - np.floor(coo.rows * aspect).astype(np.int64)
    )
    hb = int(max(1, round(2.0 * float(np.median(offsets)))))
    if n_components > 1 and hb > 0.25 * (matrix.n_cols / n_components):
        return 0.0, 0
    in_band = float(np.mean(offsets <= hb))
    baseline = min(1.0, (2 * hb + 1) / matrix.n_cols)
    if baseline >= 0.999:
        return 0.0, 0
    banded = (in_band - baseline) / (1.0 - baseline)
    if banded < _BANDED_MIN_FRACTION:
        return 0.0, 0
    return float(min(1.0, banded)), hb


def _fit_components(matrix: SparseMatrix) -> int:
    """Structurally significant connected components.

    Union-find over the bipartite row/col edge list, counting only
    components that hold >= 5% of the entries: a power-law graph
    naturally sheds a few tiny disconnected islands, and reporting
    those as "block structure" would make every skewed matrix look
    block-diagonal.
    """
    coo = matrix.to_coo()
    if coo.nnz == 0:
        return 1
    n = matrix.n_rows + matrix.n_cols
    parent = np.arange(n, dtype=np.int64)

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    cols_off = coo.cols + matrix.n_rows
    for r, c in zip(coo.rows.tolist(), cols_off.tolist()):
        ra, ca = find(r), find(c)
        if ra != ca:
            parent[ca] = ra
    nnz_by_root: dict[int, int] = {}
    for r in coo.rows.tolist():
        root = find(r)
        nnz_by_root[root] = nnz_by_root.get(root, 0) + 1
    floor = 0.05 * coo.nnz
    significant = sum(1 for count in nnz_by_root.values() if count >= floor)
    return max(1, significant)


def _fit_symmetry(
    matrix: SparseMatrix, half_bandwidth: int = 0, n_components: int = 1
) -> float:
    """Deliberate symmetry: matched-transpose fraction, baseline-corrected.

    Inside a dense narrow band (or a dense diagonal block) a transposed
    position is often occupied *by chance* — a banded matrix with ~50%
    band occupancy would otherwise fit as ~50% "symmetric".  The
    coincidental rate is the occupancy of the region entries live in
    (band strip or component blocks, whole matrix otherwise); measured
    symmetry is rescaled against it so random structure fits to ~0.
    """
    if matrix.n_rows != matrix.n_cols:
        return 0.0
    coo = matrix.to_coo()
    off = coo.rows != coo.cols
    if not off.any():
        return 0.0
    n = np.int64(matrix.n_cols)
    keys = coo.rows[off] * n + coo.cols[off]
    mirrored = coo.cols[off] * n + coo.rows[off]
    matched = float(np.isin(mirrored, keys).mean())
    width = (
        min(matrix.n_cols, 2 * half_bandwidth + 1)
        if half_bandwidth > 0
        else matrix.n_cols
    )
    area = matrix.n_rows * width / max(1, n_components)
    baseline = min(0.999, coo.nnz / area)
    corrected = (matched - baseline) / (1.0 - baseline)
    return max(0.0, corrected)


def _hub_share(lengths: np.ndarray, nnz: int) -> float:
    """Deliberate single-hub share: the heaviest row/col's entry
    fraction, recorded only when it dominates (ordinary power-law
    heads are captured by the exponent instead)."""
    if nnz == 0 or lengths.size == 0:
        return 0.0
    share = float(lengths.max()) / nnz
    return share if share >= _HUB_MIN_SHARE else 0.0


def fit(
    matrix: SparseMatrix | str | Path, *, name: str | None = None
) -> ScenarioSpec:
    """Estimate the :class:`ScenarioSpec` of a real matrix.

    Accepts any :class:`~repro.formats.base.SparseMatrix` or a path to
    a MatrixMarket ``.mtx`` file.  All estimators are deterministic,
    so fitting the same matrix twice yields the same spec.
    """
    if isinstance(matrix, (str, Path)):
        from repro.io.matrix_market import read_matrix_market

        source = Path(matrix)
        try:
            matrix = read_matrix_market(source)
        except OSError as exc:
            raise ValidationError(
                f"cannot read matrix file {str(source)!r}: {exc}"
            ) from exc
        if name is None:
            name = source.stem or "fitted"
    if not isinstance(matrix, SparseMatrix):
        raise ValidationError(
            f"fit expects a SparseMatrix or a path, got "
            f"{type(matrix).__name__}"
        )
    row_lengths = matrix.row_lengths()
    col_lengths = matrix.col_lengths()
    hub_row = _hub_share(row_lengths, matrix.nnz)
    hub_col = _hub_share(col_lengths, matrix.nnz)
    # A deliberate hub is modelled by its share, not by the exponent:
    # leaving the hub in the MLE would read "uniform + one huge row" as
    # a power law.
    row_sample = (
        np.delete(row_lengths, int(np.argmax(row_lengths)))
        if hub_row > 0 and row_lengths.size > 1
        else row_lengths
    )
    col_sample = (
        np.delete(col_lengths, int(np.argmax(col_lengths)))
        if hub_col > 0 and col_lengths.size > 1
        else col_lengths
    )
    row_exponent, row_gini = _fit_exponent(row_sample)
    col_exponent, col_gini = _fit_exponent(col_sample)
    # Components first: the band and symmetry estimators must know the
    # block structure to avoid reading diagonal blocks as a band or
    # dense-band coincidences as deliberate symmetry.
    n_components = _fit_components(matrix)
    bandedness, half_bandwidth = _fit_band(matrix, n_components)
    symmetry = _fit_symmetry(matrix, half_bandwidth, n_components)
    empty_rows = (
        float(np.mean(row_lengths == 0)) if row_lengths.size else 0.0
    )
    return ScenarioSpec(
        name=name or "fitted",
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        nnz=int(matrix.nnz),
        row_exponent=row_exponent,
        col_exponent=col_exponent,
        bandedness=bandedness,
        half_bandwidth=half_bandwidth,
        n_components=n_components,
        symmetry=round(symmetry, 6),
        empty_row_fraction=round(empty_rows, 6),
        hub_row_share=round(hub_row, 6),
        hub_col_share=round(hub_col, 6),
        row_gini=round(row_gini, 6),
        col_gini=round(col_gini, 6),
        tags=("fitted",),
    )
