"""Dynamic graphs: streaming edge updates over a frozen base matrix.

The paper's mining workloads (§4.2) assume a frozen matrix, but
production graphs mutate while queries keep flowing.  This module adds
a *delta-COO overlay*: a :class:`DynamicMatrix` wraps any base format
and absorbs ``insert``/``update``/``delete`` batches without touching
the base's O(nnz) plan scaffolding.  Queries run the base plan
unchanged and then overwrite the touched rows with a second reduction
pass over the (small) overlay — steady state stays zero-alloc because
both passes run through pooled workspaces.

The bitwise contract — the headline guarantee, enforced by
``tests/test_dynamic_differential.py`` — is that after *any* update
sequence the overlaid, compacted or repaired matrix multiplies
bit-identically to one rebuilt from scratch.  Two facts carry it:

* the per-row reduction of every bitwise-class plan is a pure function
  of the row's entry run, independent of where the run sits in the
  entry stream (``np.add.reduceat`` reduces each segment in isolation,
  and the scipy path accumulates strictly per row), so computing a
  touched row inside a small submatrix plan of the **same backend**
  reproduces the rebuilt matrix's bits for that row exactly;
* compaction performs no arithmetic — it splices entry runs — so the
  merged COO is triple-for-triple identical to ``to_coo`` of a from-
  scratch rebuild, and deterministic format constructors take it from
  there.

Formats whose reduction order depends on *global* layout decisions
(ELL width, HYB split, DIA bands, PKT clustering — the registry's
``bitwise=False`` class) cannot keep untouched rows bit-stable under an
overlay, so the wrapper compacts them eagerly on every batch: the
dynamic path then *is* the rebuilt matrix and the guarantee holds
trivially.

Compaction repairs incrementally where the format allows it
(``FormatSpec.supports_repair``): the merged COO splices untouched row
runs with the overlay's repaired runs in one O(nnz) scatter — no global
sort — and repair-capable constructors (COO pass-through, CSR counting
pass) rebuild only bookkeeping.  Everything else falls back to the
registered full ``build`` and is counted honestly as a rebuild.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ValidationError
from repro.exec.plan import SpMVPlan
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.registry import spec_for
from repro.obs import metrics as _metrics
from repro.resilience import faults as _faults

__all__ = [
    "DynamicMatrix",
    "OverlayPlan",
    "UPDATE_OPS",
    "seeded_update_stream",
]

#: Recognised update operations.  ``insert`` and ``update`` are both
#: upserts (last write wins — distinguishing them would make a batch's
#: meaning depend on unobservable history); ``delete`` of an absent
#: edge is a no-op.
UPDATE_OPS = ("insert", "update", "delete")

#: Fast-path op table (exact lowercase spellings); anything else routes
#: through the slow validation loop, which also handles ``"INSERT"``
#: and friends via ``str.lower``.
_OP_IS_DELETE = {"insert": False, "update": False, "delete": True}

#: Default compaction threshold: fold the overlay into the base once
#: the applied-op count since the last compaction exceeds this fraction
#: of the base nnz.
DEFAULT_NNZ_DELTA = 0.25


class _OverlayState:
    """One immutable snapshot of the overlay.

    ``apply_updates``/``compact`` build a fresh instance and publish it
    with a single reference assignment, so concurrent readers always
    see a consistent (touched_rows, entries, version) triple — the
    property the query-during-update hammer test leans on.

    ``cols``/``data`` hold **all** current entries of the touched rows
    (base survivors plus upserts, post-delete), sorted by (row, col);
    rows touched down to zero entries stay in ``touched_rows`` so the
    overlay pass knows to zero them.  ``indptr`` (length
    ``touched_rows.size + 1``) bounds each touched row's run inside
    the entry arrays — the three arrays are exactly the touched-row
    submatrix in CSR form, which is what the overlay sub-plan consumes
    directly; original row ids come from ``touched_rows`` on demand.
    """

    __slots__ = (
        "touched_rows",
        "cols",
        "data",
        "indptr",
        "version",
        "delta_ops",
        "base_touched_nnz",
    )

    def __init__(
        self, touched_rows, cols, data, indptr, version, delta_ops,
        base_touched_nnz,
    ):
        self.touched_rows = touched_rows
        self.cols = cols
        self.data = data
        self.indptr = indptr
        self.version = version
        self.delta_ops = delta_ops
        self.base_touched_nnz = base_touched_nnz
        for arr in (touched_rows, cols, data, indptr):
            arr.setflags(write=False)

    @classmethod
    def empty(cls, version: int = 0) -> "_OverlayState":
        e = np.zeros(0, dtype=np.int64)
        return cls(
            e, e, np.zeros(0, dtype=np.float64),
            np.zeros(1, dtype=np.int64), version, 0, 0,
        )


class OverlayPlan(SpMVPlan):
    """Base plan plus a second reduction pass over the touched rows.

    The base plan fully overwrites ``out``; the overlay pass then
    computes the touched rows through a plan **of the same backend**
    built on the canonical COO submatrix of those rows and overwrites
    them (rows emptied by deletes come out as the submatrix plan's
    zero fill).  Both passes go through pooled buffers, so repeated
    executions allocate nothing.
    """

    def __init__(self, base_plan, sub_plan, touched_rows, shape) -> None:
        super().__init__(shape)
        self.backend = base_plan.backend
        self.base_plan = base_plan
        self.sub_plan = sub_plan
        self.touched_rows = touched_rows

    # The partial buffer is keyed per thread: the matrix hands the
    # same cached plan to every concurrent reader, and a shared
    # scratch would let one reader's overlay pass overwrite another's
    # mid-scatter.  Steady state stays zero-alloc per querying thread.

    def _execute(self, x: np.ndarray, out: np.ndarray) -> None:
        self.base_plan._execute(x, out)
        partial = self.pool.buffer(
            f"overlay:y:{threading.get_ident()}", self.touched_rows.size
        )
        self.sub_plan._execute(x, partial)
        out[self.touched_rows] = partial

    def _execute_many(self, X: np.ndarray, out: np.ndarray) -> None:
        self.base_plan._execute_many(X, out)
        partial = self.pool.buffer(
            f"overlay:Y:{threading.get_ident()}",
            (self.touched_rows.size, X.shape[1]),
        )
        self.sub_plan._execute_many(X, partial)
        out[self.touched_rows] = partial


def _last_per_pair(rows, cols):
    """Boolean mask selecting the last element of each (row, col) group
    in (row, col)-sorted parallel arrays."""
    last = np.ones(rows.size, dtype=bool)
    if rows.size > 1:
        last[:-1] = (np.diff(rows) != 0) | (np.diff(cols) != 0)
    return last


def _gather_runs(starts, counts):
    """Indices covering the concatenated runs ``[s, s + c)``.

    The arange-minus-offsets trick: O(total gathered), no Python loop.
    Doubling as destination arithmetic — with ``starts`` pointing into
    an output array this yields scatter positions start-plus-rank.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, counts
    )


class DynamicMatrix(SparseMatrix):
    """A base matrix plus a delta-COO overlay of streaming updates.

    Parameters
    ----------
    base:
        Any registered-format matrix.  Formats in the registry's
        bitwise class carry a live overlay; the rest compact eagerly on
        every batch (see module docstring).
    nnz_delta:
        Compaction threshold.  A float is a fraction of the base nnz,
        an int an absolute op count; once the ops applied since the
        last compaction reach it, :meth:`compact` runs automatically.
        ``0`` compacts every batch.
    """

    def __init__(
        self, base: SparseMatrix, *, nnz_delta: float | int = DEFAULT_NNZ_DELTA
    ) -> None:
        if isinstance(base, DynamicMatrix):
            raise ValidationError(
                "base is already a DynamicMatrix; apply further batches "
                "through its own apply_updates"
            )
        if not isinstance(base, SparseMatrix):
            raise ValidationError(
                f"base must be a SparseMatrix, got {type(base).__name__}"
            )
        if isinstance(nnz_delta, bool) or (
            not isinstance(nnz_delta, (int, float)) or nnz_delta < 0
        ):
            raise ValidationError(
                f"nnz_delta must be a non-negative number, got {nnz_delta!r}"
            )
        self.shape = base.shape
        self.nnz_delta = nnz_delta
        self._base = base
        self._spec = spec_for(base)
        #: Non-bitwise layouts cannot keep untouched rows bit-stable
        #: under an overlay pass; fold every batch immediately.
        self._eager_compact = self._spec is None or not self._spec.bitwise
        self._state = _OverlayState.empty()
        self._lock = threading.Lock()
        self._plan_cache: dict[str, tuple[int, SpMVPlan]] = {}
        self._base_indptr: np.ndarray | None = None
        self._base_coo: COOMatrix | None = None
        self._coo_cache: tuple[int, COOMatrix] | None = None
        self._lengths_cache: tuple[int, np.ndarray, np.ndarray] | None = None
        #: Honest operation counters (mirrored as ``dynamic.*`` metrics
        #: when metrics are enabled) — the differential suite's
        #: no-silent-fallback assertion reads ``stats["rebuilds"]``.
        self.stats = {
            "batches": 0,
            "updates": 0,
            "compactions": 0,
            "repairs": 0,
            "rebuilds": 0,
            "plan_overlays": 0,
        }

    # ------------------------------------------------------------------
    # SparseMatrix interface
    # ------------------------------------------------------------------

    @property
    def base(self) -> SparseMatrix:
        """The current compacted base matrix (read-only view)."""
        return self._base

    @property
    def format_name(self) -> str | None:
        """Registry name of the base format, or ``None`` if unregistered."""
        return self._spec.name if self._spec is not None else None

    @property
    def data_version(self) -> int:
        return self._state.version

    @property
    def overlay_nnz(self) -> int:
        """Entries currently carried by the overlay."""
        return self._state.data.size

    @property
    def nnz(self) -> int:
        state = self._state
        return self._base.nnz - state.base_touched_nnz + state.data.size

    @property
    def nbytes(self) -> int:
        state = self._state
        return self._base.nbytes + self._array_bytes(
            state.touched_rows, state.cols, state.data, state.indptr
        )

    def to_coo(self) -> COOMatrix:
        state = self._state
        cached = self._coo_cache
        if cached is not None and cached[0] == state.version:
            return cached[1]
        coo = self._merged_coo(state)
        self._coo_cache = (state.version, coo)
        return coo

    def coo_snapshot(self) -> COOMatrix:
        return self.to_coo()

    def _build_plan(self):
        return self._make_plan("numpy", self._state)

    def row_lengths(self) -> np.ndarray:
        return self._lengths(self._state)[0]

    def col_lengths(self) -> np.ndarray:
        return self._lengths(self._state)[1]

    def _lengths(self, state) -> tuple[np.ndarray, np.ndarray]:
        cached = self._lengths_cache
        if cached is not None and cached[0] == state.version:
            return cached[1], cached[2]
        if state.touched_rows.size == 0:
            rl = np.asarray(self._base.row_lengths())
            cl = np.asarray(self._base.col_lengths())
        else:
            coo = self._merged_coo(state)
            rl = np.bincount(coo.rows, minlength=self.n_rows)
            cl = np.bincount(coo.cols, minlength=self.n_cols)
        rl.setflags(write=False)
        cl.setflags(write=False)
        self._lengths_cache = (state.version, rl, cl)
        return rl, cl

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------

    def spmv_plan(self, backend: str | None = None):
        """Version-aware plan cache.

        With an empty overlay the base matrix's own cached plan is
        returned untouched (zero steady-state overhead after a
        compaction); otherwise an :class:`OverlayPlan` is built once
        per (backend, version) and reused until the next mutation.
        """
        from repro.exec.backends import _resolve

        key = _resolve(backend)
        state = self._state
        if state.touched_rows.size == 0:
            return self._base.spmv_plan(key)
        cached = self._plan_cache.get(key)
        if cached is not None and cached[0] == state.version:
            return cached[1]
        with self._lock:
            cached = self._plan_cache.get(key)
            if cached is not None and cached[0] == state.version:
                return cached[1]
            plan = self._make_plan(key, state)
            self._plan_cache[key] = (state.version, plan)
        return plan

    def _make_plan(self, backend: str, state) -> SpMVPlan:
        from repro.exec.backends import build_plan

        base_plan = self._base.spmv_plan(backend)
        if state.touched_rows.size == 0:
            return base_plan
        # The overlay arrays *are* the touched-row submatrix in CSR
        # form — entries are (row, col)-sorted and ``state.indptr``
        # bounds each local row's run — so the sub-plan builds without
        # a conversion pass.  Same-backend reduction keeps the bitwise
        # contract (see module docstring).
        from repro.formats.csr import CSRMatrix

        sub = CSRMatrix._from_trusted_parts(
            state.indptr, state.cols, state.data,
            (state.touched_rows.size, self.n_cols),
        )
        sub_plan = build_plan(sub, backend=backend)
        self.stats["plan_overlays"] += 1
        if _metrics._ENABLED:
            _metrics.METRICS.inc("dynamic.plan_overlays", backend=backend)
        return OverlayPlan(base_plan, sub_plan, state.touched_rows, self.shape)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_updates(self, updates, **options) -> "DynamicMatrix":
        """Apply one batch of edge updates in place; returns ``self``.

        ``updates`` is an iterable of ``(op, row, col, value)`` tuples
        (``value`` optional and ignored for ``"delete"``).  Within a
        batch the last operation on a coordinate wins; an upsert with
        ``0.0`` stores an explicit zero.  The batch commits atomically:
        a validation error or injected fault leaves the matrix exactly
        as it was.
        """
        if options:
            raise ValidationError(
                f"unknown apply_updates options: {sorted(options)}"
            )
        op_rows, op_cols, op_vals, op_dels = self._normalise(updates)
        if _faults._ARMED:
            _faults.INJECTOR.fire(
                "dynamic.apply", n_ops=int(op_rows.size),
                version=self._state.version,
            )
        if op_rows.size == 0:
            return self
        with self._lock:
            state = self._state
            new_state = self._apply_locked(
                state, op_rows, op_cols, op_vals, op_dels
            )
            self._state = new_state
            self.stats["batches"] += 1
            self.stats["updates"] += int(op_rows.size)
        if _metrics._ENABLED:
            _metrics.METRICS.inc("dynamic.batches")
            _metrics.METRICS.inc("dynamic.updates", float(op_rows.size))
            _metrics.METRICS.set_gauge(
                "dynamic.overlay_nnz", float(self._state.data.size)
            )
            _metrics.METRICS.set_gauge(
                "dynamic.touched_rows", float(self._state.touched_rows.size)
            )
        if self._eager_compact or self._over_threshold():
            self.compact()
        return self

    def _over_threshold(self) -> bool:
        limit = self.nnz_delta
        if isinstance(limit, float):
            limit = limit * max(self._base.nnz, 1)
        return self._state.delta_ops >= max(limit, 1)

    def _normalise(self, updates):
        """Validate a batch and dedupe it to last-write-wins arrays.

        The vectorised fast path covers well-formed tuple batches (the
        streaming steady state, where per-op Python costs dominate a
        large batch); anything it cannot digest — unknown ops, wrong
        arity, out-of-range coordinates, non-finite values, exotic
        spellings — re-runs the loop below, which either produces the
        same arrays or raises the precise per-index error.
        """
        if not isinstance(updates, (list, tuple)):
            updates = list(updates)
        n_ops = len(updates)
        if n_ops == 0:
            e = np.zeros(0, dtype=np.int64)
            return e, e, np.zeros(0, dtype=np.float64), np.zeros(0, bool)
        try:
            # One Python pass; zip(*...) transposes at C speed and the
            # column tuples convert through plain np.array.
            dels_, lens_, rows_, cols_, vals_ = zip(*(
                (_OP_IS_DELETE[u[0]], len(u), u[1], u[2],
                 u[3] if len(u) > 3 else 0.0)
                for u in updates
            ))
            dels = np.array(dels_, dtype=bool)
            lens = np.array(lens_, dtype=np.int64)
            rows = np.array(rows_, dtype=np.int64)
            cols = np.array(cols_, dtype=np.int64)
            vals = np.array(vals_, dtype=np.float64)
        except (KeyError, TypeError, ValueError, IndexError):
            return self._normalise_slow(updates)
        vals[dels] = 0.0  # a delete's trailing value is ignored
        valid = (
            bool(np.where(dels, (lens == 3) | (lens == 4), lens == 4).all())
            and bool(np.isfinite(vals).all())
            and bool((rows >= 0).all() and (rows < self.n_rows).all())
            and bool((cols >= 0).all() and (cols < self.n_cols).all())
        )
        if not valid:
            return self._normalise_slow(updates)
        return self._dedupe(rows, cols, vals, dels)

    def _normalise_slow(self, updates):
        """The reference path: per-op validation with precise errors."""
        ops, rows, cols, vals = [], [], [], []
        for i, item in enumerate(updates):
            try:
                op, rest = item[0], item[1:]
            except (TypeError, IndexError) as exc:
                raise ValidationError(
                    f"update {i} is not an (op, row, col[, value]) tuple: "
                    f"{item!r}"
                ) from exc
            op = str(op).lower()
            if op not in UPDATE_OPS:
                raise ValidationError(
                    f"update {i} has unknown op {op!r}; expected one of "
                    f"{UPDATE_OPS}"
                )
            if op == "delete":
                if len(rest) not in (2, 3):
                    raise ValidationError(
                        f"delete update {i} must be (op, row, col): {item!r}"
                    )
                value = 0.0
            else:
                if len(rest) != 3:
                    raise ValidationError(
                        f"{op} update {i} must be (op, row, col, value): "
                        f"{item!r}"
                    )
                value = float(rest[2])
                if not np.isfinite(value):
                    raise ValidationError(
                        f"update {i} carries non-finite value {value!r}"
                    )
            r, c = int(rest[0]), int(rest[1])
            if not (0 <= r < self.n_rows and 0 <= c < self.n_cols):
                raise ValidationError(
                    f"update {i} coordinate ({r}, {c}) out of range for "
                    f"shape {self.shape}"
                )
            ops.append(op == "delete")
            rows.append(r)
            cols.append(c)
            vals.append(value)
        if not rows:
            e = np.zeros(0, dtype=np.int64)
            return e, e, np.zeros(0, dtype=np.float64), np.zeros(0, bool)
        return self._dedupe(
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
            np.asarray(ops, dtype=bool),
        )

    @staticmethod
    def _dedupe(rows, cols, vals, dels):
        """Last-write-wins per coordinate, in (row, col) order.

        lexsort is stable, so within one (row, col) group the batch
        order survives and the last element is the last-applied op.
        """
        order = np.lexsort((cols, rows))
        rows, cols, vals, dels = (
            rows[order], cols[order], vals[order], dels[order]
        )
        last = _last_per_pair(rows, cols)
        return rows[last], cols[last], vals[last], dels[last]

    def _base_canonical_coo(self) -> COOMatrix:
        """Cached canonical COO of the base (invalidated by compaction).

        Formats materialise ``to_coo`` fresh on every call; the overlay
        needs it every batch, so one copy is kept for the base's
        lifetime.
        """
        coo = self._base_coo
        if coo is None:
            coo = self._base.to_coo()
            self._base_coo = coo
        return coo

    def _base_row_ptr(self) -> np.ndarray:
        """Cached row pointer over the base's canonical COO (invalidated
        by compaction)."""
        indptr = self._base_indptr
        if indptr is None:
            coo = self._base_canonical_coo()
            indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
            if coo.nnz:
                np.cumsum(
                    np.bincount(coo.rows, minlength=self.n_rows),
                    out=indptr[1:],
                )
            self._base_indptr = indptr
        return indptr

    def _base_entries_of(self, row_ids):
        """Triples of the base matrix restricted to ``row_ids`` (sorted),
        keeping original row numbers.

        Gathered through the cached base row pointer: O(rows requested
        + entries gathered) per call, so a stream of small batches
        never pays a full-nnz scan per batch.
        """
        coo = self._base_canonical_coo()
        if row_ids.size == 0 or coo.nnz == 0:
            e = np.zeros(0, dtype=np.int64)
            return e, e, np.zeros(0, dtype=np.float64)
        indptr = self._base_row_ptr()
        starts = indptr[row_ids]
        idx = _gather_runs(starts, indptr[row_ids + 1] - starts)
        if idx.size == 0:
            e = np.zeros(0, dtype=np.int64)
            return e, e, np.zeros(0, dtype=np.float64)
        return coo.rows[idx], coo.cols[idx], coo.data[idx]

    def _apply_locked(self, state, op_rows, op_cols, op_vals, op_dels):
        prev_touched = state.touched_rows
        prev_indptr = state.indptr
        prev_counts = np.diff(prev_indptr)
        # The op arrays are (row, col)-sorted after ``_dedupe``, so the
        # sorted unique affected rows fall out of a run-boundary diff.
        affected = op_rows[np.flatnonzero(np.diff(op_rows, prepend=-1))]
        # Split into rows already in the overlay ("edited") and
        # first-timers, which bring their current base entries along.
        if prev_touched.size:
            pos = np.searchsorted(prev_touched, affected)
            safe = np.minimum(pos, prev_touched.size - 1)
            in_prev = prev_touched[safe] == affected
            edited_local = pos[in_prev]
        else:
            in_prev = np.zeros(affected.size, dtype=bool)
            edited_local = np.zeros(0, dtype=np.int64)
        newly = affected[~in_prev]
        base_r, base_c, base_d = self._base_entries_of(newly)
        ov_idx = _gather_runs(
            prev_indptr[edited_local], prev_counts[edited_local]
        )
        e_r = np.repeat(
            prev_touched[edited_local], prev_counts[edited_local]
        )
        e_c, e_d = state.cols[ov_idx], state.data[ov_idx]
        # Current entries of the affected rows: the edited-overlay and
        # newly-from-base streams cover disjoint row sets and are each
        # (row, col)-sorted, so destination arithmetic (own rank plus
        # the other stream's crossing count) merges them without a
        # sort.  Everything here is O(affected entries + ops),
        # independent of the overlay size — and sort-free: lexsort over
        # the hub-heavy affected runs costs more than every scatter in
        # this method combined.
        cur_n = e_r.size + base_r.size
        cur_r = np.empty(cur_n, dtype=np.int64)
        cur_c = np.empty(cur_n, dtype=np.int64)
        cur_d = np.empty(cur_n, dtype=np.float64)
        de = np.searchsorted(base_r, e_r) + np.arange(e_r.size)
        db = np.searchsorted(e_r, base_r) + np.arange(base_r.size)
        cur_r[de] = e_r
        cur_r[db] = base_r
        cur_c[de] = e_c
        cur_c[db] = base_c
        cur_d[de] = e_d
        cur_d[db] = base_d
        # Apply the deduped ops.  Dense (row, col) keys fit int64 —
        # both indices are validated < 2**31.  Ops hitting an existing
        # coordinate overwrite (or, for deletes, drop) it in place;
        # missed upserts merge in as fresh entries; missed deletes are
        # no-ops by contract.
        key_cur = cur_r * self.n_cols + cur_c
        key_ops = op_rows * np.int64(self.n_cols) + op_cols
        if key_cur.size:
            pos = np.searchsorted(key_cur, key_ops)
            hit = key_cur[np.minimum(pos, key_cur.size - 1)] == key_ops
        else:
            pos = np.zeros(op_rows.size, dtype=np.int64)
            hit = np.zeros(op_rows.size, dtype=bool)
        cur_d[pos[hit]] = op_vals[hit]
        keep_cur = np.ones(cur_n, dtype=bool)
        keep_cur[pos[hit & op_dels]] = False
        kept_idx = np.flatnonzero(keep_cur)
        ins = np.flatnonzero(~hit & ~op_dels)
        key_kept = key_cur[kept_idx]
        key_ins = key_ops[ins]
        total_aff = kept_idx.size + ins.size
        aff_r = np.empty(total_aff, dtype=np.int64)
        aff_c = np.empty(total_aff, dtype=np.int64)
        aff_v = np.empty(total_aff, dtype=np.float64)
        dk = np.searchsorted(key_ins, key_kept) + np.arange(kept_idx.size)
        di = np.searchsorted(key_kept, key_ins) + np.arange(ins.size)
        aff_r[dk] = cur_r[kept_idx]
        aff_r[di] = op_rows[ins]
        aff_c[dk] = cur_c[kept_idx]
        aff_c[di] = op_cols[ins]
        aff_v[dk] = cur_d[kept_idx]
        aff_v[di] = op_vals[ins]
        # Splice by scatter.  Per-row counts give the new row pointer;
        # both source streams — the unedited overlay runs and the
        # refreshed affected runs — land at start-plus-rank
        # destinations.  The untouched majority of the overlay moves
        # through one gather/scatter pair: no full-overlay sort, no
        # boolean masks over the entry arrays.
        touched = np.union1d(prev_touched, affected)
        counts = np.zeros(touched.size, dtype=np.int64)
        loc_prev = np.searchsorted(touched, prev_touched)
        loc_aff = np.searchsorted(touched, affected)
        aff_counts = (
            np.searchsorted(aff_r, affected, side="right")
            - np.searchsorted(aff_r, affected, side="left")
        )
        counts[loc_prev] = prev_counts
        counts[loc_aff] = aff_counts
        indptr = np.zeros(touched.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        out_c = np.empty(total, dtype=np.int64)
        out_v = np.empty(total, dtype=np.float64)
        kept_local = np.ones(prev_touched.size, dtype=bool)
        kept_local[edited_local] = False
        kept_local = np.flatnonzero(kept_local)
        kept_counts = prev_counts[kept_local]
        src = _gather_runs(prev_indptr[kept_local], kept_counts)
        dest = _gather_runs(indptr[loc_prev[kept_local]], kept_counts)
        out_c[dest] = state.cols[src]
        out_v[dest] = state.data[src]
        dest = _gather_runs(indptr[loc_aff], aff_counts)
        out_c[dest] = aff_c
        out_v[dest] = aff_v
        bp = self._base_row_ptr()
        base_touched_nnz = state.base_touched_nnz + int(
            (bp[newly + 1] - bp[newly]).sum()
        )
        return _OverlayState(
            touched, out_c, out_v, indptr,
            state.version + 1,
            state.delta_ops + int(op_rows.size),
            base_touched_nnz,
        )

    # ------------------------------------------------------------------
    # Compaction: incremental repair / full rebuild
    # ------------------------------------------------------------------

    def _merged_coo(self, state) -> COOMatrix:
        """Base entries with touched rows replaced by the overlay's.

        One O(nnz) scatter, no global sort: destination offsets come
        from the merged row-length prefix sum, and each source stream
        already carries its entries in per-row (ascending column)
        order, so rank-within-row arithmetic places every triple.
        """
        base_coo = self._base_canonical_coo()
        touched = state.touched_rows
        if touched.size == 0:
            return base_coo
        n_rows = self.n_rows
        base_indptr = self._base_row_ptr()
        base_rl = np.diff(base_indptr)
        ov_counts = np.diff(state.indptr)
        final_rl = base_rl.copy()
        final_rl[touched] = ov_counts
        final_indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(final_rl, out=final_indptr[1:])
        total = int(final_indptr[-1])
        out_r = np.empty(total, dtype=np.int64)
        out_c = np.empty(total, dtype=np.int64)
        out_v = np.empty(total, dtype=np.float64)
        # Untouched base entries: rank within row is position minus the
        # base row start; destination is the merged row start plus rank.
        if base_coo.nnz:
            touched_mask = np.zeros(n_rows, dtype=bool)
            touched_mask[touched] = True
            src = np.flatnonzero(~touched_mask[base_coo.rows])
            rows_u = base_coo.rows[src]
            dest = final_indptr[rows_u] + (src - base_indptr[rows_u])
            out_r[dest] = rows_u
            out_c[dest] = base_coo.cols[src]
            out_v[dest] = base_coo.data[src]
        # Overlay entries, same arithmetic over the touched-row counts.
        if state.data.size:
            ov_rows = np.repeat(touched, ov_counts)
            rank = (
                np.arange(ov_rows.size, dtype=np.int64)
                - np.repeat(state.indptr[:-1], ov_counts)
            )
            dest = final_indptr[ov_rows] + rank
            out_r[dest] = ov_rows
            out_c[dest] = state.cols
            out_v[dest] = state.data
        return COOMatrix(out_r, out_c, out_v, self.shape)

    def compact(self) -> "DynamicMatrix":
        """Fold the overlay into the base matrix; returns ``self``.

        Repair-capable formats (``FormatSpec.supports_repair``) rebuild
        from the spliced merge through their incremental ``repair``
        constructor; everything else re-runs the full registered
        ``build`` and is counted as a rebuild.  The swap is atomic and
        fault-injected *before* commit, so an injected error leaves the
        pre-compaction state intact.
        """
        with self._lock:
            state = self._state
            if state.touched_rows.size == 0:
                return self
            merged = self._merged_coo(state)
            spec = self._spec
            if _faults._ARMED:
                _faults.INJECTOR.fire(
                    "dynamic.compact",
                    version=state.version,
                    overlay_nnz=int(state.data.size),
                )
            if spec is None:
                # Unregistered base type: the canonical COO *is* the
                # compacted matrix (counted as a rebuild — there is no
                # repair contract to honour).
                new_base = merged
                repaired = False
            elif spec.supports_repair and spec.repair is not None:
                new_base = spec.repair(merged)
                repaired = True
            else:
                new_base = spec.build(merged)
                repaired = False
            self._base = new_base
            self._state = _OverlayState.empty(state.version + 1)
            self._base_indptr = None
            self._base_coo = None
            self._coo_cache = None
            self._lengths_cache = None
            self._plan_cache.clear()
            self.stats["compactions"] += 1
            self.stats["repairs" if repaired else "rebuilds"] += 1
        if _metrics._ENABLED:
            _metrics.METRICS.inc("dynamic.compactions")
            _metrics.METRICS.inc(
                "dynamic.repairs" if repaired else "dynamic.rebuilds",
                format=self.format_name or "unregistered",
            )
            _metrics.METRICS.set_gauge("dynamic.overlay_nnz", 0.0)
            _metrics.METRICS.set_gauge("dynamic.touched_rows", 0.0)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicMatrix({type(self._base).__name__}, shape={self.shape}, "
            f"nnz={self.nnz}, overlay={self.overlay_nnz}, "
            f"version={self.data_version})"
        )


# ----------------------------------------------------------------------
# Seeded update streams (tests / CLI / benchmarks)
# ----------------------------------------------------------------------


def seeded_update_stream(matrix, n_ops: int, seed: int):
    """A reproducible mixed stream of edge updates against ``matrix``.

    Roughly half the operations upsert (re-weight existing edges, new
    random edges, the occasional self-loop and explicit zero), the rest
    delete — mostly existing edges, sometimes absent ones (a no-op by
    contract), and occasionally a whole row's entries so row-emptying
    paths stay exercised.  A pure function of ``(matrix structure,
    n_ops, seed)``, shared by the differential tests, ``repro update``
    and ``bench_dynamic.py``.
    """
    if n_ops < 0:
        raise ValidationError(f"n_ops must be non-negative, got {n_ops}")
    coo = matrix.coo_snapshot()
    n_rows, n_cols = matrix.shape
    if n_rows == 0 or n_cols == 0:
        return []
    rng = np.random.default_rng(seed)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(coo.rows, minlength=n_rows), out=indptr[1:])
    stream = []
    while len(stream) < n_ops:
        roll = rng.random()
        if roll < 0.45 or coo.nnz == 0:
            # Upsert: an existing edge 1/3 of the time, else a random
            # (possibly new, possibly self-loop) coordinate.
            if coo.nnz and rng.random() < 0.34:
                k = int(rng.integers(coo.nnz))
                r, c = int(coo.rows[k]), int(coo.cols[k])
            else:
                r = int(rng.integers(n_rows))
                c = r % n_cols if rng.random() < 0.05 else int(
                    rng.integers(n_cols)
                )
            value = 0.0 if rng.random() < 0.05 else float(
                rng.standard_normal()
            )
            op = "insert" if rng.random() < 0.5 else "update"
            stream.append((op, r, c, value))
        elif roll < 0.9:
            # Delete: an existing edge 2/3 of the time, else a miss.
            if coo.nnz and rng.random() < 0.67:
                k = int(rng.integers(coo.nnz))
                stream.append(
                    ("delete", int(coo.rows[k]), int(coo.cols[k]))
                )
            else:
                stream.append(
                    ("delete", int(rng.integers(n_rows)),
                     int(rng.integers(n_cols)))
                )
        else:
            # Empty one row outright (bounded so a single draw cannot
            # blow the op budget).
            r = int(rng.integers(n_rows))
            row_cols = coo.cols[indptr[r] : indptr[r + 1]][:8]
            for c in row_cols:
                stream.append(("delete", r, int(c)))
            if row_cols.size == 0:
                stream.append(("delete", r, int(rng.integers(n_cols))))
    return stream[:n_ops]
