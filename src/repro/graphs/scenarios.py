"""The curated scenario corpus: the structure long tail, as spec data.

Every scenario is a :class:`~repro.graphs.fit.ScenarioSpec` expressed
as plain dict data and parsed through the same loud validation as a
user-supplied JSON spec — the corpus is *data, not code*, so adding a
scenario never adds a generator.  The base families mirror the paper's
matrix tables (power-law web/social graphs, meshes, LP matrices); the
``adversarial`` tag marks deliberately hostile structure (near-dense
rows, bipartite skew, disconnected components, a single hub,
empty-row-heavy matrices, staircase bands) that the differential,
hardening, tuner and chaos sweeps in ``tests/test_scenario_corpus.py``
and ``benchmarks/bench_scenarios.py`` must all survive.

Sizes here are "scale 1"; sweeps pass ``scale=`` to
:func:`generate_scenario` to trade fidelity for runtime.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.graphs.fit import ScenarioSpec, generate

__all__ = [
    "adversarial_names",
    "corpus",
    "generate_scenario",
    "get_scenario",
    "scenario_names",
]

#: The corpus as declarative spec payloads.  Parsed (and therefore
#: validated) once, lazily, on first access.
_CORPUS_DATA: tuple[dict, ...] = (
    # ------------------------------------------------------------- base
    {
        # Web-crawl style: heavy power law on both axes (paper Table 1).
        "name": "powerlaw_web",
        "n_rows": 1024, "n_cols": 1024, "nnz": 8192,
        "row_exponent": 2.1, "col_exponent": 2.1,
        "tags": ["base", "powerlaw"],
    },
    {
        # Milder skew, denser rows: social-network-ish degree mix.
        "name": "powerlaw_mild",
        "n_rows": 1024, "n_cols": 1024, "nnz": 16384,
        "row_exponent": 2.6, "col_exponent": 2.6,
        "tags": ["base", "powerlaw"],
    },
    {
        # No structure at all: the ELL/uniform-friendly baseline.
        "name": "uniform_sparse",
        "n_rows": 1024, "n_cols": 1024, "nnz": 8192,
        "tags": ["base", "uniform"],
    },
    {
        # Narrow diagonal band: PDE-mesh structure, DIA's home turf.
        "name": "banded_mesh",
        "n_rows": 1024, "n_cols": 1024, "nnz": 10240,
        "bandedness": 1.0, "half_bandwidth": 8,
        "tags": ["base", "banded"],
    },
    {
        # Wide-and-short LP-style rectangle (more cols than rows).
        "name": "lp_wide",
        "n_rows": 64, "n_cols": 2048, "nnz": 6144,
        "tags": ["base", "rectangular"],
    },
    {
        # Undirected social graph: symmetric with power-law degrees.
        "name": "symmetric_social",
        "n_rows": 1024, "n_cols": 1024, "nnz": 8192,
        "row_exponent": 2.3, "col_exponent": 2.3, "symmetry": 0.5,
        "tags": ["base", "powerlaw", "symmetric"],
    },
    {
        # Small and dense: the cache-resident corner of the space.
        "name": "dense_block",
        "n_rows": 128, "n_cols": 128, "nnz": 4096,
        "tags": ["base", "dense"],
    },
    # ------------------------------------------------ adversarial tail
    {
        # A few near-dense rows on a sparse background: ELL padding
        # poison and the worst case for row-parallel load balance.
        "name": "near_dense_rows",
        "n_rows": 1024, "n_cols": 1024, "nnz": 6144,
        "row_exponent": 1.6,
        "tags": ["adversarial", "skew"],
    },
    {
        # Tall-skinny bipartite with a power-law column head: many rows
        # hash into few hot columns.
        "name": "bipartite_skew",
        "n_rows": 2048, "n_cols": 512, "nnz": 12288,
        "col_exponent": 1.9,
        "tags": ["adversarial", "rectangular", "skew"],
    },
    {
        # Four disconnected diagonal blocks: partitioners and
        # components-unaware shard balancing trip here.
        "name": "disconnected_components",
        "n_rows": 1024, "n_cols": 1024, "nnz": 8192,
        "n_components": 4,
        "tags": ["adversarial", "blocks"],
    },
    {
        # One row holds ~30% of all entries: a single straggler shard.
        "name": "single_hub",
        "n_rows": 1024, "n_cols": 1024, "nnz": 3072,
        "hub_row_share": 0.3,
        "tags": ["adversarial", "hub"],
    },
    {
        # 60% empty rows: offset arrays full of zero-length segments.
        "name": "empty_row_heavy",
        "n_rows": 1024, "n_cols": 1024, "nnz": 6144,
        "empty_row_fraction": 0.6,
        "tags": ["adversarial", "empty"],
    },
    {
        # Six banded diagonal blocks: a staircase that defeats both a
        # single-band DIA layout and naive block detection.
        "name": "staircase_banded",
        "n_rows": 1024, "n_cols": 1024, "nnz": 8192,
        "n_components": 6, "bandedness": 1.0, "half_bandwidth": 6,
        "tags": ["adversarial", "banded", "blocks"],
    },
)

_parsed: dict[str, ScenarioSpec] | None = None


def corpus() -> tuple[ScenarioSpec, ...]:
    """All corpus scenarios, parsed and validated, in stable order."""
    global _parsed
    if _parsed is None:
        specs = [ScenarioSpec.from_dict(d) for d in _CORPUS_DATA]
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValidationError("corpus has duplicate scenario names")
        _parsed = {s.name: s for s in specs}
    return tuple(_parsed.values())


def scenario_names() -> tuple[str, ...]:
    """Names of every corpus scenario, in stable order."""
    return tuple(s.name for s in corpus())


def adversarial_names() -> tuple[str, ...]:
    """Names of the adversarial subset."""
    return tuple(s.name for s in corpus() if s.adversarial)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one scenario by name, loudly."""
    corpus()
    assert _parsed is not None
    try:
        return _parsed[name]
    except KeyError:
        raise ValidationError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(scenario_names())}"
        ) from None


def generate_scenario(
    name: str, *, scale: float = 1.0, seed: int = 0
) -> COOMatrix:
    """Generate the named scenario's matrix (seeded, bit-reproducible)."""
    return generate(get_scenario(name), scale=scale, seed=seed)
