"""R-MAT (recursive matrix) power-law graph generator.

The classic Chakrabarti–Zhan–Faloutsos generator: each edge picks one of
the four quadrants of the adjacency matrix with probabilities
``(a, b, c, d)`` and recurses.  With the default skewed probabilities the
in/out degree distributions follow a power law — the structure the
paper's Observations 2 and 5 rely on.

Everything is vectorised: one ``(m, scale)`` random draw decides every
bit of every edge at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix

__all__ = ["rmat_edges", "rmat_graph"]

#: Default R-MAT quadrant probabilities (Graph500 uses 0.57/0.19/0.19/0.05).
DEFAULT_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    n_edges: int,
    *,
    probs: tuple[float, float, float, float] = DEFAULT_PROBS,
    noise: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n_edges`` directed edges over ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        ``log2`` of the vertex count.
    n_edges:
        Number of edges to draw (duplicates possible; dedupe happens at
        matrix construction).
    probs:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    noise:
        Per-level multiplicative jitter that breaks the exact
        self-similarity of pure R-MAT (standard practice).
    seed:
        RNG seed; generation is deterministic given the seed.
    """
    if scale < 1 or scale > 40:
        raise ValidationError(f"scale must be in [1, 40], got {scale}")
    if n_edges < 0:
        raise ValidationError("n_edges must be non-negative")
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValidationError(f"probs must sum to 1, got {probs}")
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        # Jitter the quadrant probabilities per level.
        jitter = 1.0 + noise * (rng.random(4) - 0.5)
        pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
        total = pa + pb + pc + pd
        pa, pb, pc = pa / total, pb / total, pc / total
        draw = rng.random(n_edges)
        # Quadrant decision: bit of src is 1 for quadrants c, d;
        # bit of dst is 1 for quadrants b, d.
        src_bit = draw >= pa + pb
        dst_bit = (draw >= pa) & (draw < pa + pb) | (draw >= pa + pb + pc)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return src, dst


def rmat_graph(
    n_nodes: int,
    n_edges: int,
    *,
    probs: tuple[float, float, float, float] = DEFAULT_PROBS,
    seed: int = 0,
    allow_self_loops: bool = False,
) -> COOMatrix:
    """Adjacency matrix of an R-MAT graph with exactly ``n_nodes`` nodes.

    ``n_nodes`` need not be a power of two: vertices are folded with a
    modulo, which preserves the degree skew.  Duplicate edges collapse
    to single unit entries.
    """
    if n_nodes < 1:
        raise ValidationError("n_nodes must be >= 1")
    scale = max(1, int(np.ceil(np.log2(n_nodes))))
    src, dst = rmat_edges(scale, n_edges, probs=probs, seed=seed)
    src %= n_nodes
    dst %= n_nodes
    if not allow_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    return COOMatrix.from_edges(src, dst, (n_nodes, n_nodes))
