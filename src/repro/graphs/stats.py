"""Structural diagnostics: power-law fitting and skew measures.

These validate that the synthetic analogues actually have the properties
the paper's optimisations exploit (power-law column/row lengths,
concentration of non-zeros in few columns) and drive the ``Power-law?``
column of the dataset tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix

__all__ = [
    "DegreeSummary",
    "ccdf",
    "concentration",
    "gini",
    "is_power_law",
    "powerlaw_mle",
    "summarize",
]


def powerlaw_mle(degrees: np.ndarray, *, k_min: int = 1) -> float:
    """Maximum-likelihood power-law exponent (discrete Hill estimator).

    ``alpha = 1 + n / sum(ln(k_i / (k_min - 0.5)))`` over degrees
    ``k_i >= k_min`` (Clauset–Shalizi–Newman).

    Degenerate sequences get a defined sentinel instead of a warning or
    a misleading finite value: the result is ``inf`` when fewer than
    two *distinct* degrees survive the cutoff — an all-zero matrix, a
    single row, or perfectly uniform degrees have no tail to estimate
    and are definitely not a power law.
    """
    if k_min <= 0:
        raise ValidationError("k_min must be positive")
    degs = np.asarray(degrees, dtype=np.float64)
    if degs.size and np.any(degs < 0):
        raise ValidationError("degrees must be non-negative")
    degs = degs[degs >= k_min]
    if degs.size == 0 or np.unique(degs).size < 2:
        return np.inf
    logs = np.log(degs / (k_min - 0.5))
    total = logs.sum()
    if total <= 0:
        return np.inf
    return 1.0 + degs.size / total


def ccdf(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of a degree sequence: ``P(deg >= k)`` per k."""
    degs = np.asarray(degrees)
    degs = degs[degs > 0]
    if degs.size == 0:
        return np.array([]), np.array([])
    values, counts = np.unique(degs, return_counts=True)
    survival = np.cumsum(counts[::-1])[::-1] / degs.size
    return values, survival


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sequence (0 = uniform,
    → 1 = all mass on one item).  A convenient scalar for "how skewed
    are the column lengths"."""
    vals = np.sort(np.asarray(values, dtype=np.float64))
    if vals.size and vals[0] < 0:  # validate before the zero-sum return:
        # [-1, 1] sums to zero and must not silently read as "uniform".
        raise ValidationError("gini requires non-negative values")
    if vals.size == 0 or vals.sum() == 0:
        return 0.0
    n = vals.size
    index = np.arange(1, n + 1)
    return float((2 * np.dot(index, vals) / (n * vals.sum())) - (n + 1) / n)


def concentration(values: np.ndarray, fraction: float = 0.1) -> float:
    """Fraction of total mass held by the top ``fraction`` of items.

    "The long columns ... concentrate a large portion of the non-zeros"
    (Observation 2): for a power-law matrix the top 10 % of columns hold
    well over half the non-zeros.
    """
    if not 0 < fraction <= 1:
        raise ValidationError("fraction must be in (0, 1]")
    vals = np.sort(np.asarray(values, dtype=np.float64))[::-1]
    total = vals.sum()
    if total == 0:
        return 0.0
    top = max(1, int(round(fraction * vals.size)))
    return float(vals[:top].sum() / total)


@dataclass(frozen=True)
class DegreeSummary:
    """Degree-distribution fingerprint of a matrix."""

    n_rows: int
    n_cols: int
    nnz: int
    mean_row_length: float
    mean_col_length: float
    max_row_length: int
    max_col_length: int
    row_exponent: float
    col_exponent: float
    col_gini: float
    col_top10_share: float

    @property
    def power_law(self) -> bool:
        """Heuristic "Power-law?" verdict matching the paper's tables."""
        return self.col_gini > 0.5 and 1.5 < self.col_exponent < 4.0


def summarize(matrix: SparseMatrix) -> DegreeSummary:
    """Compute the degree fingerprint of a matrix."""
    row_lengths = matrix.row_lengths()
    col_lengths = matrix.col_lengths()
    return DegreeSummary(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        nnz=matrix.nnz,
        mean_row_length=float(row_lengths.mean()) if row_lengths.size else 0.0,
        mean_col_length=float(col_lengths.mean()) if col_lengths.size else 0.0,
        max_row_length=int(row_lengths.max()) if row_lengths.size else 0,
        max_col_length=int(col_lengths.max()) if col_lengths.size else 0,
        row_exponent=powerlaw_mle(row_lengths, k_min=2),
        col_exponent=powerlaw_mle(col_lengths, k_min=2),
        col_gini=gini(col_lengths),
        col_top10_share=concentration(col_lengths, 0.1),
    )


def is_power_law(matrix: SparseMatrix) -> bool:
    """Convenience wrapper for the table's "Power-law?" column."""
    return summarize(matrix).power_law
