"""Simulated costs of the auxiliary vector kernels.

Appendix F: "Each iteration of our HITS implementation involves one
SpMV kernel, three parallel reduction kernels ... and two vector
division by constant kernels.  The vector division by constant kernel
can be implemented very efficiently in the same way as vector addition."
These kernels are trivially bandwidth-bound streams; only their byte
traffic and launch overheads matter.
"""

from __future__ import annotations

from repro.gpu.costs import CostReport
from repro.gpu.launch import kernel_launch_seconds
from repro.gpu.memory import streamed_bytes
from repro.gpu.spec import DeviceSpec
from repro.kernels import calibration as cal

__all__ = ["axpy_cost", "reduction_cost", "scale_cost"]


def _stream_report(
    label: str, logical_bytes: float, device: DeviceSpec, launches: int = 1
) -> CostReport:
    return CostReport.from_tallies(
        label,
        device=device,
        flops=0.0,
        algorithmic_bytes=logical_bytes,
        dram_bytes=streamed_bytes(logical_bytes, device),
        compute_seconds=0.0,
        overhead_seconds=kernel_launch_seconds(launches, device),
        bandwidth_efficiency=cal.STREAM_EFFICIENCY,
    )


def reduction_cost(n: int, device: DeviceSpec) -> CostReport:
    """Parallel reduction of an ``n``-vector (two-pass tree)."""
    return _stream_report("reduction", 4 * n + 4 * (n // 256 + 1),
                          device, launches=2)


def axpy_cost(n: int, device: DeviceSpec) -> CostReport:
    """``y = a*x + b*z`` style element-wise update: 2 reads + 1 write."""
    return _stream_report("axpy", 12 * n, device)


def scale_cost(n: int, device: DeviceSpec) -> CostReport:
    """``y = x / c`` (vector division by constant): 1 read + 1 write."""
    return _stream_report("scale", 8 * n, device)
