"""Random Walk with Restart (paper Appendix F, Equation 9).

.. math:: r_i^{(k+1)} = c\\,W r_i^{(k)} + (1 - c)\\,e_i

``W`` is the column-normalised adjacency of the *undirected* graph
("since RWR operates on undirected graphs, we treat each link in our
directed graph datasets as an undirected link"); ``c = 0.9`` and the
experiment averages 25 random query nodes — "the number of computations
per iteration is the same whichever node is selected as query".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.gpu.spec import DeviceSpec
from repro.kernels.base import SpMVKernel, create
from repro.mining.power_method import MiningResult, l1_delta
from repro.mining.vector_kernels import axpy_cost, reduction_cost

__all__ = ["RWRResult", "random_walk_with_restart", "rwr_operator"]

RWRResult = MiningResult


def rwr_operator(adjacency: COOMatrix) -> COOMatrix:
    """Column-normalised adjacency of the symmetrised graph."""
    if adjacency.n_rows != adjacency.n_cols:
        raise ValidationError("RWR needs a square adjacency matrix")
    sym = COOMatrix.from_edges(
        np.concatenate([adjacency.rows, adjacency.cols]),
        np.concatenate([adjacency.cols, adjacency.rows]),
        adjacency.shape,
    )
    return CSCMatrix.from_coo(sym).normalize_cols().to_coo()


def random_walk_with_restart(
    adjacency: SparseMatrix,
    *,
    kernel: str | SpMVKernel = "hyb",
    device: DeviceSpec | None = None,
    restart: float = 0.9,
    queries: np.ndarray | None = None,
    n_queries: int = 25,
    seed: int = 11,
    tol: float = 1e-8,
    max_iter: int = 200,
    **kernel_options,
) -> MiningResult:
    """Run RWR for each query node and average the simulated cost.

    The returned ``vector`` is the relevance vector of the *last* query;
    ``extra['per_query_iterations']`` holds all iteration counts and
    ``total_cost`` is the **mean** cost over queries (what Table 5
    reports: "the performance is reported by averaging").
    """
    if not 0 < restart < 1:
        raise ValidationError(f"restart must be in (0, 1), got {restart}")
    coo = adjacency.to_coo()
    operator = rwr_operator(coo)
    if isinstance(kernel, SpMVKernel):
        spmv = kernel
    else:
        spmv = create(kernel, operator, device=device, **kernel_options)
    n = operator.n_rows
    rng = np.random.default_rng(seed)
    if queries is None:
        queries = rng.choice(n, size=min(n_queries, n), replace=False)
    queries = np.asarray(queries, dtype=np.int64)
    if queries.size == 0:
        raise ValidationError("at least one query node is required")
    if queries.min() < 0 or queries.max() >= n:
        raise ValidationError("query node out of range")

    dev = spmv.device
    per_iteration = (
        spmv.cost()
        + axpy_cost(n, dev)       # restart update
        + reduction_cost(n, dev)  # convergence check
    ).relabel(f"rwr/{spmv.name}")

    iteration_counts: list[int] = []
    all_converged = True
    r = np.zeros(n)
    for query in queries:
        e = np.zeros(n)
        e[query] = 1.0
        r = e.copy()
        converged = False
        iterations = 0
        for iterations in range(1, max_iter + 1):
            new_r = restart * spmv.spmv(r) + (1.0 - restart) * e
            delta = l1_delta(new_r, r)
            r = new_r
            if delta < tol:
                converged = True
                break
        iteration_counts.append(iterations)
        all_converged &= converged
    mean_iterations = float(np.mean(iteration_counts))
    total = per_iteration.scaled(mean_iterations).relabel(per_iteration.label)
    return MiningResult(
        algorithm="rwr",
        kernel_name=spmv.name,
        vector=r,
        iterations=int(round(mean_iterations)),
        converged=all_converged,
        per_iteration=per_iteration,
        total_cost=total,
        extra={
            "restart": restart,
            "queries": queries,
            "per_query_iterations": iteration_counts,
        },
    )
