"""Random Walk with Restart (paper Appendix F, Equation 9).

.. math:: r_i^{(k+1)} = c\\,W r_i^{(k)} + (1 - c)\\,e_i

``W`` is the column-normalised adjacency of the *undirected* graph
("since RWR operates on undirected graphs, we treat each link in our
directed graph datasets as an undirected link"); ``c = 0.9`` and the
experiment averages 25 random query nodes — "the number of computations
per iteration is the same whichever node is selected as query".
"""

from __future__ import annotations

import numpy as np

from repro.errors import CheckpointError, ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.gpu.spec import DeviceSpec
from repro.kernels.base import SpMVKernel, create
from repro.mining.power_method import (
    MiningResult,
    convergence_trace,
    finish_run,
    l1_delta,
    resolve_checkpoint,
    resolve_engine,
    resolve_warm_start,
    resume_checkpoint,
)
from repro.mining.vector_kernels import axpy_cost, reduction_cost
from repro.tuner.fingerprint import matrix_fingerprint

__all__ = ["RWRResult", "random_walk_with_restart", "rwr_operator"]

RWRResult = MiningResult


def rwr_operator(adjacency: COOMatrix) -> COOMatrix:
    """Column-normalised adjacency of the symmetrised graph."""
    if adjacency.n_rows != adjacency.n_cols:
        raise ValidationError("RWR needs a square adjacency matrix")
    sym = COOMatrix.from_edges(
        np.concatenate([adjacency.rows, adjacency.cols]),
        np.concatenate([adjacency.cols, adjacency.rows]),
        adjacency.shape,
    )
    return CSCMatrix.from_coo(sym).normalize_cols().to_coo()


def random_walk_with_restart(
    adjacency: SparseMatrix,
    *,
    kernel: str | SpMVKernel = "hyb",
    device: DeviceSpec | None = None,
    restart: float = 0.9,
    queries: np.ndarray | None = None,
    n_queries: int = 25,
    seed: int = 11,
    tol: float = 1e-8,
    max_iter: int = 200,
    batched: bool = True,
    executor=None,
    n_shards: int | str | None = None,
    shard_mode: str | None = None,
    tune: bool = False,
    checkpoint=None,
    resume_from=None,
    warm_start=None,
    warm_start_check: bool = True,
    **kernel_options,
) -> MiningResult:
    """Run RWR for each query node and average the simulated cost.

    The returned ``vector`` is the relevance vector of the *last* query;
    ``extra['per_query_iterations']`` holds all iteration counts and
    ``total_cost`` is the **mean** cost over queries (what Table 5
    reports: "the performance is reported by averaging").

    With ``batched`` (the default) all query walks advance together
    through one SpMM per iteration — the matrix structure is gathered
    once per step for every seed instead of once per seed per step.
    Each column evolves independently and its convergence is judged on
    a contiguous copy with the same reduction the sequential path uses,
    so per-query iteration counts and vectors are bit-identical to
    running the seeds one at a time.

    ``executor``/``n_shards`` route each step's SpMV/SpMM through a
    :class:`~repro.exec.ShardedExecutor` built on the column-normalised
    operator; walks stay bit-identical to the single-shard run.

    ``checkpoint``/``resume_from`` snapshot and restore the full batched
    walk state (``R``/``frozen``/``active``/``iteration_counts`` plus
    the query set — the checkpoint's queries *are* the resumed run's
    queries); only the ``batched`` path supports them, the sequential
    path raises :class:`ValidationError`.

    ``warm_start`` seeds the batched walk matrix of a fresh run — an
    ``(n, len(queries))`` array or a checkpoint / ``.npz`` path (its
    ``"R"`` array) from a previous run over the *same query set* —
    iteration counting restarts at zero; batched-only, mutually
    exclusive with ``resume_from``.
    """
    if not 0 < restart < 1:
        raise ValidationError(f"restart must be in (0, 1), got {restart}")
    if not batched and (
        checkpoint is not None
        or resume_from is not None
        or warm_start is not None
    ):
        raise ValidationError(
            "checkpoint/resume_from/warm_start require batched=True (the "
            "sequential path interleaves per-query loops and has no single "
            "resumable iteration state)"
        )
    coo = adjacency.to_coo()
    operator = rwr_operator(coo)
    fingerprint = matrix_fingerprint(operator)
    if isinstance(kernel, SpMVKernel):
        spmv = kernel
    else:
        spmv = create(kernel, operator, device=device, **kernel_options)
    n = operator.n_rows
    ckpt_config = resolve_checkpoint(checkpoint)
    if warm_start is not None and resume_from is not None:
        # The full resolution needs the finalised query set (for the
        # expected shape), but the contradiction is reportable now,
        # before any checkpoint file is touched.
        resolve_warm_start(
            warm_start, resume_from, (n, 0), key="R", algorithm="rwr"
        )
    snapshot = resume_checkpoint(resume_from, "rwr", n=n, restart=restart)
    if snapshot is not None:
        resumed_queries = np.asarray(
            snapshot.array("queries"), dtype=np.int64
        )
        if queries is not None and not np.array_equal(
            np.asarray(queries, dtype=np.int64), resumed_queries
        ):
            raise CheckpointError(
                "queries passed alongside resume_from do not match the "
                "checkpoint's query set"
            )
        queries = resumed_queries
    rng = np.random.default_rng(seed)
    if queries is None:
        queries = rng.choice(n, size=min(n_queries, n), replace=False)
    queries = np.asarray(queries, dtype=np.int64)
    if queries.size == 0:
        raise ValidationError("at least one query node is required")
    if queries.min() < 0 or queries.max() >= n:
        raise ValidationError("query node out of range")
    warm = resolve_warm_start(
        warm_start, resume_from, (n, queries.size), key="R",
        algorithm="rwr", fingerprint=fingerprint,
        check=warm_start_check,
    )

    dev = spmv.device
    per_iteration = (
        spmv.cost()
        + axpy_cost(n, dev)       # restart update
        + reduction_cost(n, dev)  # convergence check
    ).relabel(f"rwr/{spmv.name}")

    trace = convergence_trace(
        "rwr", restart=restart, tol=tol, batched=batched
    )
    with resolve_engine(
        spmv, operator, executor, n_shards, tune=tune,
        shard_mode=shard_mode,
    ) as engine:
        trace.tick()
        if batched:
            iteration_counts, all_converged, r = _run_batched(
                engine, queries, n, restart, tol, max_iter, trace,
                ckpt_config=ckpt_config, snapshot=snapshot, warm=warm,
            )
        else:
            iteration_counts, all_converged, r = _run_sequential(
                engine, queries, n, restart, tol, max_iter, trace
            )
        shards_used = getattr(engine, "n_shards", 1)
    mean_iterations = float(np.mean(iteration_counts))
    total = per_iteration.scaled(mean_iterations).relabel(per_iteration.label)
    extra = {
        "restart": restart,
        "queries": queries,
        "per_query_iterations": iteration_counts,
        "batched": batched,
        "n_shards": shards_used,
        "operator_fingerprint": fingerprint,
    }
    if snapshot is not None:
        extra["resume_iteration"] = snapshot.iteration
    if warm is not None:
        extra["warm_start"] = True
    return finish_run(trace, MiningResult(
        algorithm="rwr",
        kernel_name=spmv.name,
        vector=r,
        iterations=int(round(mean_iterations)),
        converged=all_converged,
        per_iteration=per_iteration,
        total_cost=total,
        extra=extra,
    ))


def _run_sequential(
    spmv,  # SpMVKernel or ShardedExecutor: anything with spmv(x, out=)
    queries: np.ndarray,
    n: int,
    restart: float,
    tol: float,
    max_iter: int,
    trace,
) -> tuple[list[int], bool, np.ndarray]:
    """One power-method run per query (double-buffered)."""
    iteration_counts: list[int] = []
    all_converged = True
    r = np.zeros(n)
    new_r = np.empty(n)
    scratch = np.empty(n)
    base = np.empty(n)
    for query in queries:
        e = np.zeros(n)
        e[query] = 1.0
        np.multiply(e, 1.0 - restart, out=base)
        r = e.copy()
        converged = False
        iterations = 0
        for iterations in range(1, max_iter + 1):
            spmv.spmv(r, out=new_r)
            np.multiply(new_r, restart, out=new_r)
            new_r += base
            delta = l1_delta(new_r, r, scratch=scratch)
            r, new_r = new_r, r
            if trace.active:
                trace.record(iterations, delta, query=float(query))
            if delta < tol:
                converged = True
                break
        iteration_counts.append(iterations)
        all_converged &= converged
    return iteration_counts, all_converged, r


def _run_batched(
    spmv,  # SpMVKernel or ShardedExecutor: anything with spmm(X, out=)
    queries: np.ndarray,
    n: int,
    restart: float,
    tol: float,
    max_iter: int,
    trace,
    ckpt_config=None,
    snapshot=None,
    warm=None,
) -> tuple[list[int], bool, np.ndarray]:
    """All query walks in lock step, one SpMM per iteration.

    A column that converges is snapshotted (the sequential run would
    have stopped there) and thereafter only rides along in the batch;
    its extra multiplications cannot perturb the other columns because
    each SpMM column depends only on its own right-hand side.

    The checkpoint state is everything the loop body reads across
    iterations (``R``/``frozen``/``active``/``iteration_counts``);
    ``E``/``base`` are pure functions of the queries, so resuming from
    a snapshot replays the remaining iterations bitwise.
    """
    k = queries.size
    E = np.zeros((n, k))
    E[queries, np.arange(k)] = 1.0
    base = (1.0 - restart) * E
    start_iteration = 0
    if snapshot is None:
        R = E.copy() if warm is None else warm
        frozen = E.copy()
        active = np.ones(k, dtype=bool)
        iteration_counts = np.zeros(k, dtype=np.int64)
    else:
        R = np.array(snapshot.array("R"), dtype=np.float64)
        frozen = np.array(snapshot.array("frozen"), dtype=np.float64)
        active = np.array(snapshot.array("active"), dtype=bool)
        iteration_counts = np.array(
            snapshot.array("iteration_counts"), dtype=np.int64
        )
        for name, array, shape in (
            ("R", R, (n, k)),
            ("frozen", frozen, (n, k)),
            ("active", active, (k,)),
            ("iteration_counts", iteration_counts, (k,)),
        ):
            if array.shape != shape:
                raise CheckpointError(
                    f"checkpoint array {name!r} has shape {array.shape}, "
                    f"expected {shape}"
                )
        start_iteration = snapshot.iteration
    R_new = np.empty((n, k))
    col_new = np.empty(n)
    col_old = np.empty(n)
    scratch = np.empty(n)
    for iteration in range(start_iteration + 1, max_iter + 1):
        if not active.any():
            break
        spmv.spmm(R, out=R_new)
        np.multiply(R_new, restart, out=R_new)
        R_new += base
        for j in np.nonzero(active)[0]:
            np.copyto(col_new, R_new[:, j])
            np.copyto(col_old, R[:, j])
            delta = l1_delta(col_new, col_old, scratch=scratch)
            iteration_counts[j] = iteration
            if trace.active:
                trace.record(iteration, delta, query=float(queries[j]))
            if delta < tol:
                active[j] = False
                frozen[:, j] = R_new[:, j]
        R, R_new = R_new, R
        if ckpt_config is not None and ckpt_config.due(iteration):
            from repro.resilience.checkpoint import Checkpoint

            ckpt_config.save(Checkpoint(
                algorithm="rwr",
                iteration=iteration,
                arrays={
                    "R": R.copy(),
                    "frozen": frozen.copy(),
                    "active": active.copy(),
                    "iteration_counts": iteration_counts.copy(),
                    "queries": queries.copy(),
                },
                params={"n": n, "restart": restart, "tol": tol},
            ))
    for j in np.nonzero(active)[0]:
        frozen[:, j] = R[:, j]
    all_converged = not active.any()
    return (
        iteration_counts.tolist(),
        all_converged,
        np.ascontiguousarray(frozen[:, -1]),
    )
