"""PageRank via the power method (paper Appendix F, Equation 6).

.. math:: p^{(k+1)} = c\\,W^T p^{(k)} + (1 - c)\\,p^{(0)}

``W`` is the row-normalised adjacency matrix; the SpMV kernel computes
``W^T p`` and two small vector kernels apply the damping update and the
convergence check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CheckpointError, ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.gpu.spec import DeviceSpec
from repro.kernels.base import SpMVKernel, create
from repro.mining.power_method import (
    MiningResult,
    convergence_trace,
    finish_run,
    l1_delta,
    resolve_checkpoint,
    resolve_engine,
    resolve_warm_start,
    resume_checkpoint,
)
from repro.mining.vector_kernels import axpy_cost, reduction_cost
from repro.tuner.fingerprint import matrix_fingerprint

__all__ = ["PageRankResult", "pagerank", "pagerank_operator"]

PageRankResult = MiningResult


def pagerank_operator(adjacency: COOMatrix) -> COOMatrix:
    """Build ``W^T`` (transposed row-normalised adjacency) directly.

    Entry ``(v, u)`` of the operator is ``1 / outdeg(u)`` for each edge
    ``u -> v`` — a random surfer on ``u`` moves to ``v`` with that
    probability.
    """
    if adjacency.n_rows != adjacency.n_cols:
        raise ValidationError("PageRank needs a square adjacency matrix")
    out_deg = adjacency.row_lengths().astype(np.float64)
    weights = np.where(out_deg[adjacency.rows] > 0,
                       1.0 / np.maximum(out_deg[adjacency.rows], 1), 0.0)
    return COOMatrix.from_unsorted(
        adjacency.cols,
        adjacency.rows,
        weights,
        (adjacency.n_cols, adjacency.n_rows),
        sum_duplicates=False,
    )


def pagerank(
    adjacency: SparseMatrix,
    *,
    kernel: str | SpMVKernel = "hyb",
    device: DeviceSpec | None = None,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 200,
    executor=None,
    n_shards: int | str | None = None,
    shard_mode: str | None = None,
    tune: bool = False,
    checkpoint=None,
    resume_from=None,
    warm_start=None,
    warm_start_check: bool = True,
    **kernel_options,
) -> MiningResult:
    """Run PageRank and report the converged vector plus simulated cost.

    Parameters
    ----------
    adjacency:
        Directed adjacency matrix ``A(u, v) = 1`` for edge ``u -> v``.
    kernel:
        Kernel name (built on ``W^T``) or a pre-built kernel instance.
    damping:
        The paper sets ``c = 0.85``.
    executor, n_shards:
        Run the per-iteration SpMV through a
        :class:`~repro.exec.ShardedExecutor` — either a caller-owned one
        (built on the PageRank operator) or one built here with
        ``n_shards`` shards (``"auto"`` for the nnz/cores policy).  The
        iterates are bit-identical to the single-shard run.
    shard_mode:
        ``"thread"`` or ``"process"`` fan-out for the sharded run (see
        :class:`~repro.exec.ShardedExecutor`); needs ``n_shards``.
    tune:
        Let the measured auto-tuner (:func:`repro.tuner.tune`) decide
        the execution configuration for the PageRank operator —
        mutually exclusive with ``executor``/``n_shards``.  Decisions
        are persisted in the tuning cache, so only the first run on a
        matrix pays for measurement.
    checkpoint:
        ``None``, an iteration period (int), or a
        :class:`~repro.resilience.CheckpointConfig` — snapshot the
        iterate every ``every`` iterations (in memory, plus an ``.npz``
        when the config carries a path).
    resume_from:
        A :class:`~repro.resilience.Checkpoint` (or ``.npz`` path) from
        a previous run: iterations continue at ``iteration + 1`` and
        replay the uninterrupted trajectory **bitwise** — same operator,
        same recurrence, same reduction order.
    warm_start:
        Seed the initial iterate of a *fresh* run (iteration count
        restarts at zero) with a previous result — an array of length
        ``n``, a :class:`~repro.mining.MiningResult`, or a checkpoint /
        ``.npz`` path (its ``"p"`` array).  The dynamic-graph idiom:
        after a small update the old vector is near the new fixed point
        and convergence takes a fraction of the cold iterations.  The
        teleport base stays the uniform ``p0`` regardless.  Mutually
        exclusive with ``resume_from``.  A ``MiningResult`` seed is
        checked against this run's operator fingerprint — a result
        from a different graph raises unless ``warm_start_check=False``
        (the dynamic-update idiom, where the structure legitimately
        changed).
    """
    if not 0 < damping < 1:
        raise ValidationError(f"damping must be in (0, 1), got {damping}")
    coo = adjacency.to_coo()
    operator = pagerank_operator(coo)
    if isinstance(kernel, SpMVKernel):
        spmv = kernel
    else:
        spmv = create(kernel, operator, device=device, **kernel_options)
    n = operator.n_rows
    fingerprint = matrix_fingerprint(operator)
    ckpt_config = resolve_checkpoint(checkpoint)
    warm = resolve_warm_start(
        warm_start, resume_from, (n,), key="p", algorithm="pagerank",
        fingerprint=fingerprint, check=warm_start_check,
    )
    snapshot = resume_checkpoint(
        resume_from, "pagerank", n=n, damping=damping
    )
    p0 = np.full(n, 1.0 / n)
    start_iteration = 0
    if snapshot is None:
        p = p0.copy() if warm is None else warm
    else:
        p = np.array(snapshot.array("p"), dtype=np.float64)
        if p.shape != (n,):
            raise CheckpointError(
                f"checkpoint vector has shape {p.shape}, expected ({n},)"
            )
        start_iteration = snapshot.iteration
    # Double-buffered power method: after the plan is built on the first
    # call, each iteration is one SpMV into a reused buffer plus
    # in-place vector ops — no per-iteration heap allocation.
    new_p = np.empty(n)
    scratch = np.empty(n)
    base = (1.0 - damping) * p0
    iterations = start_iteration
    converged = False
    # Per-iteration residual / dangling-mass / wall-time record; the
    # shared NULL_TRACE (obs disabled) reduces every hook below to one
    # attribute test, keeping the loop allocation-free.
    trace = convergence_trace("pagerank", damping=damping, tol=tol)
    with resolve_engine(
        spmv, operator, executor, n_shards, tune=tune,
        shard_mode=shard_mode,
    ) as engine:
        trace.tick()
        for iterations in range(start_iteration + 1, max_iter + 1):
            engine.spmv(p, out=new_p)
            if trace.active:
                # Probability mass the operator lost at dangling nodes
                # (rows of W^T with no incoming weight): in minus out.
                dangling = float(p.sum() - new_p.sum())
            np.multiply(new_p, damping, out=new_p)
            new_p += base
            delta = l1_delta(new_p, p, scratch=scratch)
            p, new_p = new_p, p
            if trace.active:
                trace.record(
                    iterations, delta,
                    dangling_mass=dangling, mass=float(p.sum()),
                )
            if ckpt_config is not None and ckpt_config.due(iterations):
                from repro.resilience.checkpoint import Checkpoint

                ckpt_config.save(Checkpoint(
                    algorithm="pagerank",
                    iteration=iterations,
                    arrays={"p": p.copy()},
                    params={"n": n, "damping": damping, "tol": tol},
                ))
            if delta < tol:
                converged = True
                break
        shards_used = getattr(engine, "n_shards", 1)
    dev = spmv.device
    per_iteration = (
        spmv.cost()
        + axpy_cost(n, dev)          # damping update
        + reduction_cost(n, dev)     # convergence check
    ).relabel(f"pagerank/{spmv.name}")
    total = per_iteration.scaled(iterations).relabel(per_iteration.label)
    extra = {
        "damping": damping,
        "tol": tol,
        "n_shards": shards_used,
        "operator_fingerprint": fingerprint,
    }
    if start_iteration:
        extra["resume_iteration"] = start_iteration
    if warm is not None:
        extra["warm_start"] = True
    return finish_run(trace, MiningResult(
        algorithm="pagerank",
        kernel_name=spmv.name,
        vector=p,
        iterations=iterations,
        converged=converged,
        per_iteration=per_iteration,
        total_cost=total,
        extra=extra,
    ))
