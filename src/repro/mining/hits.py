"""HITS via the power method (paper Appendix F, Equations 7–8).

The two coupled updates are rewritten as one SpMV on the combined
``2|V| x 2|V|`` matrix

.. math:: \\begin{bmatrix} 0 & A^T \\\\ A & 0 \\end{bmatrix}

"Combining the two matrices into one ... results in a larger and
sparser matrix making it more amenable to our optimizations" — the
paper's explanation for why even Youtube speeds up under HITS.
Each iteration runs one SpMV, two half-vector normalisations (one
reduction + one scale each) and one convergence reduction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CheckpointError, ValidationError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.gpu.spec import DeviceSpec
from repro.kernels.base import SpMVKernel, create
from repro.mining.power_method import (
    MiningResult,
    convergence_trace,
    finish_run,
    l1_delta,
    resolve_checkpoint,
    resolve_engine,
    resolve_warm_start,
    resume_checkpoint,
)
from repro.mining.vector_kernels import reduction_cost, scale_cost
from repro.tuner.fingerprint import matrix_fingerprint

__all__ = ["HITSResult", "hits", "hits_operator"]

HITSResult = MiningResult


def hits_operator(adjacency: COOMatrix) -> COOMatrix:
    """The combined ``[[0, A^T], [A, 0]]`` block matrix."""
    if adjacency.n_rows != adjacency.n_cols:
        raise ValidationError("HITS needs a square adjacency matrix")
    n = adjacency.n_rows
    # Top-right block: A^T at rows [0, n), columns [n, 2n).
    top_rows = adjacency.cols
    top_cols = adjacency.rows + n
    # Bottom-left block: A at rows [n, 2n), columns [0, n).
    bottom_rows = adjacency.rows + n
    bottom_cols = adjacency.cols
    return COOMatrix.from_unsorted(
        np.concatenate([top_rows, bottom_rows]),
        np.concatenate([top_cols, bottom_cols]),
        np.concatenate([adjacency.data, adjacency.data]),
        (2 * n, 2 * n),
        sum_duplicates=False,
    )


def hits(
    adjacency: SparseMatrix,
    *,
    kernel: str | SpMVKernel = "hyb",
    device: DeviceSpec | None = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    multi_vector: bool = True,
    executor=None,
    n_shards: int | str | None = None,
    shard_mode: str | None = None,
    tune: bool = False,
    checkpoint=None,
    resume_from=None,
    warm_start=None,
    warm_start_check: bool = True,
    **kernel_options,
) -> MiningResult:
    """Run HITS; the result vector holds authorities then hubs.

    Authority scores are ``vector[:n]``, hub scores ``vector[n:]``; each
    half is normalised to sum to 1 every iteration, as in the paper.

    With ``multi_vector`` (the default) the paired hub/authority updates
    run as one batched SpMM on the block operator: the right-hand sides
    ``[a; 0]`` and ``[0; h]`` share a single structure gather, and
    summing the two result columns reconstructs exactly ``B @ v``
    (each half of each column is either the wanted product or exact
    zeros, so the sum is bit-identical to the single-vector path).

    ``executor``/``n_shards`` route the per-iteration SpMV/SpMM through
    a :class:`~repro.exec.ShardedExecutor` built on the block operator
    (the combined matrix is exactly the kind of larger, sparser matrix
    shard balance pays off on); iterates stay bit-identical.

    ``checkpoint``/``resume_from`` snapshot and restore the stacked
    iterate ``v`` (see :func:`repro.mining.pagerank.pagerank`); resumed
    runs replay the uninterrupted trajectory bitwise.

    ``warm_start`` seeds the stacked ``[authorities; hubs]`` iterate of
    a fresh run (length ``2n`` array, a previous HITS
    :class:`~repro.mining.MiningResult`, or a checkpoint / ``.npz``
    path) — iteration counting restarts at zero; mutually exclusive
    with ``resume_from``.  A ``MiningResult`` seed is checked against
    this run's block-operator fingerprint; a result from a different
    graph raises unless ``warm_start_check=False``.
    """
    coo = adjacency.to_coo()
    n = coo.n_rows
    operator = hits_operator(coo)
    fingerprint = matrix_fingerprint(operator)
    if isinstance(kernel, SpMVKernel):
        spmv = kernel
    else:
        spmv = create(kernel, operator, device=device, **kernel_options)
    ckpt_config = resolve_checkpoint(checkpoint)
    warm = resolve_warm_start(
        warm_start, resume_from, (2 * n,), key="v", algorithm="hits",
        fingerprint=fingerprint, check=warm_start_check,
    )
    snapshot = resume_checkpoint(resume_from, "hits", n=n)
    start_iteration = 0
    if snapshot is None:
        v = np.full(2 * n, 1.0 / n) if warm is None else warm
    else:
        v = np.array(snapshot.array("v"), dtype=np.float64)
        if v.shape != (2 * n,):
            raise CheckpointError(
                f"checkpoint vector has shape {v.shape}, expected ({2 * n},)"
            )
        start_iteration = snapshot.iteration
    new_v = np.empty(2 * n)
    scratch = np.empty(2 * n)
    if multi_vector:
        X = np.zeros((2 * n, 2))
        Y = np.empty((2 * n, 2))
    iterations = start_iteration
    converged = False
    trace = convergence_trace("hits", tol=tol, multi_vector=multi_vector)
    with resolve_engine(
        spmv, operator, executor, n_shards, tune=tune,
        shard_mode=shard_mode,
    ) as engine:
        trace.tick()
        for iterations in range(start_iteration + 1, max_iter + 1):
            if multi_vector:
                X[:n, 0] = v[:n]
                X[n:, 1] = v[n:]
                engine.spmm(X, out=Y)
                np.add(Y[:, 0], Y[:, 1], out=new_v)
            else:
                engine.spmv(v, out=new_v)
            if trace.active:
                # Pre-normalisation mass of each half: the quantities
                # the per-iteration normalisations divide away.
                auth_mass = float(new_v[:n].sum())
                hub_mass = float(new_v[n:].sum())
            for half in (slice(0, n), slice(n, 2 * n)):
                total = new_v[half].sum()
                if total > 0:
                    new_v[half] /= total
            delta = l1_delta(new_v, v, scratch=scratch)
            v, new_v = new_v, v
            if trace.active:
                trace.record(
                    iterations, delta,
                    authority_mass=auth_mass, hub_mass=hub_mass,
                )
            if ckpt_config is not None and ckpt_config.due(iterations):
                from repro.resilience.checkpoint import Checkpoint

                ckpt_config.save(Checkpoint(
                    algorithm="hits",
                    iteration=iterations,
                    arrays={"v": v.copy()},
                    params={"n": n, "tol": tol},
                ))
            if delta < tol:
                converged = True
                break
        shards_used = getattr(engine, "n_shards", 1)
    dev = spmv.device
    per_iteration = (
        spmv.cost()
        + reduction_cost(n, dev)  # authority normalisation sum
        + reduction_cost(n, dev)  # hub normalisation sum
        + scale_cost(n, dev)      # authority division
        + scale_cost(n, dev)      # hub division
        + reduction_cost(2 * n, dev)  # convergence check
    ).relabel(f"hits/{spmv.name}")
    total_cost = per_iteration.scaled(iterations).relabel(per_iteration.label)
    extra = {
        "n": n,
        "tol": tol,
        "multi_vector": multi_vector,
        "n_shards": shards_used,
        "operator_fingerprint": fingerprint,
    }
    if start_iteration:
        extra["resume_iteration"] = start_iteration
    if warm is not None:
        extra["warm_start"] = True
    return finish_run(trace, MiningResult(
        algorithm="hits",
        kernel_name=spmv.name,
        vector=v,
        iterations=iterations,
        converged=converged,
        per_iteration=per_iteration,
        total_cost=total_cost,
        extra=extra,
    ))
