"""Graph-mining algorithms on the SpMV kernels (paper §4.2, Appendix F).

PageRank, HITS and Random Walk with Restart are all power methods whose
per-iteration time is dominated by one SpMV; each implementation here
pairs the exact iteration (NumPy) with a simulated cost assembled from
the chosen SpMV kernel plus the small vector kernels (reductions,
axpy-style updates) the paper also implements on the GPU.
"""

from repro.mining.hits import HITSResult, hits
from repro.mining.pagerank import PageRankResult, pagerank
from repro.mining.power_method import MiningResult
from repro.mining.rwr import RWRResult, random_walk_with_restart
from repro.mining.vector_kernels import (
    axpy_cost,
    reduction_cost,
    scale_cost,
)

__all__ = [
    "HITSResult",
    "MiningResult",
    "PageRankResult",
    "RWRResult",
    "axpy_cost",
    "hits",
    "pagerank",
    "random_walk_with_restart",
    "reduction_cost",
    "scale_cost",
]
