"""Shared power-method infrastructure for the mining algorithms."""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.gpu.costs import CostReport
from repro.obs import metrics as _metrics
from repro.obs.convergence import convergence_trace

__all__ = [
    "MiningResult",
    "convergence_trace",
    "finish_run",
    "l1_delta",
    "resolve_checkpoint",
    "resolve_engine",
    "resolve_warm_start",
    "resume_checkpoint",
]


@contextmanager
def resolve_engine(
    kernel,
    operator,
    executor=None,
    n_shards=None,
    tune=False,
    shard_mode=None,
):
    """Choose the object whose ``spmv``/``spmm`` drives a power loop.

    With neither ``executor`` nor ``n_shards`` given, the loop runs on
    the kernel's cached single-shard plan — unless ``REPRO_SPMV_SHARDS``
    forces the sharded executor underneath every mining call (the CI
    configuration).  ``n_shards`` (an int, or ``"auto"`` for the
    nnz-and-cores policy) builds a :class:`~repro.exec.ShardedExecutor`
    on the operator for the duration of the run; ``shard_mode``
    (``"thread"``/``"process"``, default ``REPRO_SPMV_MODE`` or thread)
    selects its fan-out mechanism.  A caller-owned ``executor``
    (pre-built on the same operator, reusable across runs) is used
    as-is and left open.  ``tune=True`` asks the measured auto-tuner
    (:func:`repro.tuner.tune`) for the operator's fastest ``format x
    backend x shard-count x mode`` configuration — mutually exclusive
    with ``executor``/``n_shards``/``shard_mode``, which pin what the
    tuner would decide.
    """
    from repro.exec.sharded import ShardedExecutor, env_shard_count

    if tune:
        if executor is not None or n_shards is not None:
            raise ValidationError(
                "tune=True decides the executor configuration; do not "
                "also pass executor= or n_shards="
            )
        if shard_mode is not None:
            raise ValidationError(
                "tune=True decides the shard mode; do not also pass "
                "shard_mode="
            )
        from repro.tuner import tune as tune_matrix

        engine = tune_matrix(operator).build_engine(operator)
        try:
            yield engine
        finally:
            engine.close()
        return
    if executor is not None:
        if n_shards is not None:
            raise ValidationError(
                "pass either executor= or n_shards=, not both"
            )
        if shard_mode is not None:
            raise ValidationError(
                "a caller-owned executor fixes the shard mode; do not "
                "also pass shard_mode="
            )
        if executor.shape != operator.shape:
            raise ValidationError(
                f"executor shape {executor.shape} does not match the "
                f"operator shape {operator.shape}"
            )
        yield executor
        return
    if n_shards is None:
        n_shards = env_shard_count()
        if n_shards is None:
            if shard_mode is not None:
                raise ValidationError(
                    "shard_mode= needs a sharded run; pass n_shards= "
                    "(or set REPRO_SPMV_SHARDS) as well"
                )
            yield kernel
            return
    owned = ShardedExecutor(operator, n_shards, mode=shard_mode)
    try:
        yield owned
    finally:
        owned.close()


def resolve_checkpoint(checkpoint):
    """Normalise a mining ``checkpoint=`` argument.

    Accepts ``None`` (no snapshots), an int period, or a full
    :class:`~repro.resilience.CheckpointConfig`.
    """
    from repro.resilience.checkpoint import normalize_checkpoint

    return normalize_checkpoint(checkpoint)


def resume_checkpoint(resume_from, algorithm: str, **require):
    """Load and validate a mining ``resume_from=`` argument.

    Accepts ``None``, a :class:`~repro.resilience.Checkpoint`, or a path
    to a saved ``.npz`` snapshot.  Parameter mismatches (wrong algorithm,
    wrong graph size, different damping, …) raise
    :class:`~repro.errors.CheckpointError` — a resumed run must replay
    the uninterrupted trajectory bitwise, which only holds when the
    recurrence is identical.
    """
    if resume_from is None:
        return None
    from repro.resilience.checkpoint import load_checkpoint

    snapshot = load_checkpoint(resume_from)
    snapshot.require(algorithm, **require)
    if _metrics._ENABLED:
        _metrics.METRICS.inc(
            "resilience.checkpoints.resumed", algorithm=algorithm
        )
    return snapshot


def resolve_warm_start(
    warm_start, resume_from, shape: tuple[int, ...], *, key: str,
    algorithm: str, fingerprint: str | None = None, check: bool = True,
):
    """Normalise a mining ``warm_start=`` argument to a seed array.

    ``warm_start`` seeds the *initial iterate* of a fresh run — the
    dynamic-graph idiom: after a small update stream, the previous
    converged vector is already near the new fixed point and the power
    method closes the residual in a fraction of the cold iterations.
    It accepts an array of the right shape, a :class:`MiningResult`
    (its ``vector``), or a :class:`~repro.resilience.Checkpoint`
    instance / ``.npz`` path (its ``key`` array).

    Unlike ``resume_from`` — which replays an *interrupted* trajectory
    bitwise and therefore validates the full recurrence — a warm start
    is a new trajectory from a caller-chosen point: iteration counting
    restarts at zero and only shape/finiteness are enforced.  The two
    are mutually exclusive; asking for both is a contradiction
    (resume pins the iterate, warm start replaces it) and raises.

    A :class:`MiningResult` additionally carries the structural
    fingerprint of the operator it converged on
    (``extra["operator_fingerprint"]``).  When the caller passes this
    run's ``fingerprint`` and ``check`` is true (the default), a
    mismatch raises :class:`~repro.errors.ValidationError` — a result
    from a *different* graph that happens to share the shape is almost
    always a caller bug (the wrong variable, a stale handle), and the
    power method would silently converge to the right answer from a
    nonsense seed, hiding it.  Pass ``check=False`` (the mining entry
    points' ``warm_start_check=False``) for the dynamic-graph idiom
    where the fingerprint legitimately changed between runs.
    """
    if warm_start is None:
        return None
    if resume_from is not None:
        raise ValidationError(
            f"{algorithm}: warm_start and resume_from are mutually "
            "exclusive — resume replays an interrupted trajectory from "
            "its own iterate, warm start begins a new one"
        )
    from repro.resilience.checkpoint import Checkpoint, load_checkpoint

    value = warm_start
    if isinstance(value, MiningResult):
        stamped = value.extra.get("operator_fingerprint")
        if (
            check
            and fingerprint is not None
            and stamped is not None
            and stamped != fingerprint
        ):
            raise ValidationError(
                f"{algorithm}: warm_start comes from a different matrix "
                f"(operator fingerprint {stamped} != {fingerprint}); "
                "pass warm_start_check=False if the graph legitimately "
                "changed (the dynamic-update idiom)"
            )
        value = value.vector
    elif isinstance(value, Checkpoint):
        value = value.array(key)
    elif isinstance(value, (str, os.PathLike)):
        value = load_checkpoint(value).array(key)
    value = np.asarray(value, dtype=np.float64)
    if value.shape != shape:
        raise ValidationError(
            f"{algorithm}: warm_start has shape {value.shape}, "
            f"expected {shape}"
        )
    if value.size and not np.isfinite(value).all():
        raise ValidationError(
            f"{algorithm}: warm_start contains NaN or Inf"
        )
    # A private copy: the loop double-buffers in place and must never
    # scribble on the caller's previous result.
    return value.copy()


def l1_delta(
    new: np.ndarray, old: np.ndarray, scratch: np.ndarray | None = None
) -> float:
    """L1 distance between successive iterates (the convergence check
    the GPU implementations realise with a parallel reduction).

    ``scratch`` — a buffer of the same shape — makes the check
    allocation-free; the value is bit-identical either way (same
    subtract/abs/pairwise-sum sequence).
    """
    if scratch is None:
        return float(np.abs(new - old).sum())
    np.subtract(new, old, out=scratch)
    np.abs(scratch, out=scratch)
    return float(scratch.sum())


@dataclass
class MiningResult:
    """Outcome of an iterative mining run.

    ``total_cost`` is the simulated GPU (or CPU) time of the whole run:
    the per-iteration cost scaled by the realised iteration count.  The
    paper's Tables 1/4/5 report exactly this total; Figures 3/8 report
    the per-iteration GFLOPS/GB/s, available via ``per_iteration``.
    """

    algorithm: str
    kernel_name: str
    vector: np.ndarray
    iterations: int
    converged: bool
    per_iteration: CostReport
    total_cost: CostReport
    extra: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.total_cost.time_seconds

    @property
    def gflops(self) -> float:
        return self.per_iteration.gflops

    @property
    def bandwidth_gbs(self) -> float:
        return self.per_iteration.bandwidth_gbs

    def require_converged(self) -> "MiningResult":
        """Raise unless the run converged (for strict callers)."""
        if not self.converged:
            raise ConvergenceError(
                f"{self.algorithm} with {self.kernel_name} did not "
                f"converge in {self.iterations} iterations"
            )
        return self

    @property
    def convergence(self) -> dict | None:
        """The per-iteration convergence trace recorded by the
        observability layer, or ``None`` when it was disabled."""
        return self.extra.get("convergence")


def finish_run(trace, result: MiningResult) -> MiningResult:
    """Attach a convergence trace to a finished run and report it.

    Every mining algorithm funnels its result through here: when the
    observability layer is on, the per-iteration record lands in
    ``result.extra["convergence"]`` and the run counters/iteration
    histogram on the global metrics registry; when it is off this is a
    single attribute check.
    """
    if trace.active:
        result.extra["convergence"] = trace.to_dict()
    if _metrics._ENABLED:
        _metrics.METRICS.inc("mining.runs", algorithm=result.algorithm)
        _metrics.METRICS.observe(
            "mining.iterations",
            result.iterations,
            algorithm=result.algorithm,
        )
    return result
