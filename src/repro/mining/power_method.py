"""Shared power-method infrastructure for the mining algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.gpu.costs import CostReport

__all__ = ["MiningResult", "l1_delta"]


def l1_delta(
    new: np.ndarray, old: np.ndarray, scratch: np.ndarray | None = None
) -> float:
    """L1 distance between successive iterates (the convergence check
    the GPU implementations realise with a parallel reduction).

    ``scratch`` — a buffer of the same shape — makes the check
    allocation-free; the value is bit-identical either way (same
    subtract/abs/pairwise-sum sequence).
    """
    if scratch is None:
        return float(np.abs(new - old).sum())
    np.subtract(new, old, out=scratch)
    np.abs(scratch, out=scratch)
    return float(scratch.sum())


@dataclass
class MiningResult:
    """Outcome of an iterative mining run.

    ``total_cost`` is the simulated GPU (or CPU) time of the whole run:
    the per-iteration cost scaled by the realised iteration count.  The
    paper's Tables 1/4/5 report exactly this total; Figures 3/8 report
    the per-iteration GFLOPS/GB/s, available via ``per_iteration``.
    """

    algorithm: str
    kernel_name: str
    vector: np.ndarray
    iterations: int
    converged: bool
    per_iteration: CostReport
    total_cost: CostReport
    extra: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.total_cost.time_seconds

    @property
    def gflops(self) -> float:
        return self.per_iteration.gflops

    @property
    def bandwidth_gbs(self) -> float:
        return self.per_iteration.bandwidth_gbs

    def require_converged(self) -> "MiningResult":
        """Raise unless the run converged (for strict callers)."""
        if not self.converged:
            raise ConvergenceError(
                f"{self.algorithm} with {self.kernel_name} did not "
                f"converge in {self.iterations} iterations"
            )
        return self
