"""Ablation: chunked single GPU vs the multi-GPU design (paper §3.2).

The paper rejects processing an out-of-core matrix in chunks on one GPU
because every iteration re-uploads the chunks over the 8 GB/s PCIe bus
while the kernel itself sustains ~40 GB/s.  This bench measures that
argument: per-iteration time of the chunked strategy (PCIe + serial
kernels) against the multi-GPU cluster at the same aggregate memory,
plus the §3.1 sorting-cost amortisation the preprocessing relies on.
"""

from repro.core.preprocess import transform_cost
from repro.kernels import create
from repro.multigpu import ClusterSpec, simulate_spmv
from repro.multigpu.out_of_core import simulate_chunked_single_gpu
from repro.plotting import ascii_table

from bench_fig4_multigpu import GPU_MEMORY_LIMIT, web_device
from harness import GRAPH_SCALE, WEB_SCALE, dataset_device, emit, load_dataset


def test_out_of_core_strategies(benchmark):
    ds = load_dataset("it-2004", WEB_SCALE)
    device = web_device()

    chunked = simulate_chunked_single_gpu(
        ds.matrix, device, kernel="hyb",
        gpu_memory_bytes=GPU_MEMORY_LIMIT,
    )
    cluster = ClusterSpec(
        n_gpus=chunked.n_chunks, device=device,
        gpu_memory_bytes=GPU_MEMORY_LIMIT,
    )
    distributed = simulate_spmv(
        ds.matrix, cluster, kernel="hyb", check_memory=False
    )
    strategy = ascii_table(
        ["strategy", "per-iteration time (us)", "GFLOPS",
         "PCIe/comm (us)"],
        [
            [f"single GPU, {chunked.n_chunks} chunks",
             chunked.iteration_seconds * 1e6, chunked.gflops,
             chunked.pcie_seconds * 1e6],
            [f"{chunked.n_chunks} GPUs, bitonic rows",
             distributed.iteration_seconds * 1e6, distributed.gflops,
             distributed.comm_seconds * 1e6],
        ],
        title="Out-of-core strategies on it-2004 analogue (paper 3.2)",
    )

    # Sorting-cost amortisation (paper 3.1).
    flickr = load_dataset("flickr", GRAPH_SCALE)
    fdev = dataset_device("flickr", GRAPH_SCALE)
    hyb = create("hyb", flickr.matrix, device=fdev).cost()
    tile = create("tile-composite", flickr.matrix, device=fdev).cost()
    prep = transform_cost(flickr.matrix)
    saving = hyb.time_seconds - tile.time_seconds
    amortise = ascii_table(
        ["quantity", "value"],
        [
            ["one-time transform cost (ms)", prep.total_seconds * 1e3],
            ["per-SpMV saving vs HYB (ms)", saving * 1e3],
            ["iterations to amortise",
             prep.amortization_iterations(saving)],
        ],
        title="Sorting/transform amortisation on flickr (paper 3.1)",
        precision=4,
    )
    emit("ablation_out_of_core", strategy + "\n\n" + amortise)

    benchmark.pedantic(
        simulate_chunked_single_gpu,
        args=(ds.matrix, device),
        kwargs={"kernel": "hyb", "gpu_memory_bytes": GPU_MEMORY_LIMIT},
        rounds=1, iterations=1,
    )

    assert chunked.pcie_bound, "PCIe must dominate the chunked strategy"
    assert distributed.iteration_seconds < chunked.iteration_seconds
