"""Benchmark-suite configuration: make the shared harness importable
and keep the printed tables visible."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
