"""Per-scenario leaderboard of the load-balanced format zoo (ISSUE 7).

Three scenarios stress the three failure modes the zoo attacks:

* **rmat** — the paper's power-law workhorse, moderate skew;
* **chung_lu_skewed** — a Chung–Lu graph with a heavy hub head
  (exponent < 2), the degree distribution where CSR row-split load
  imbalance is worst and merge-path's nnz-balanced splits should pay;
* **banded** — near-uniform short rows, where grouped/strip packing
  (RGCSR/CMRS) competes with DIA/ELL.

Every registered format is timed on every available backend with the
tuner's own ``_measure`` (warmup + calibrated median), so the
leaderboard and ``repro tune`` agree on methodology.  Two gates:

* **mpcsr vs csr** on the skewed Chung–Lu scenario must reach the
  ISSUE 7 speedup target on the native backend.  The gate arms only
  where the claim is expressible — ``affinity >= 4`` and numba
  importable; elsewhere the measured numbers are recorded with
  ``hardware_limited`` set, honestly, instead of failing a 1-core or
  JIT-less runner.
* **tuner discovery** — the measured grid must *contain* a zoo format
  on at least one scenario purely via registry predicates/model picks
  (asserted everywhere, it is deterministic), and when the hardware
  gate is armed ``tune`` must also *select* one.

Results go to ``benchmarks/results/BENCH_formats.json``; ``--quick``
is the CI mode.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import bench_header  # noqa: E402
from repro.errors import FormatNotApplicableError  # noqa: E402
from repro.exec.backends import available_backends  # noqa: E402
from repro.exec.native import native_available  # noqa: E402
from repro.exec.sharded import available_cpu_count  # noqa: E402
from repro.formats.registry import format_names  # noqa: E402
from repro.graphs.chung_lu import chung_lu_graph  # noqa: E402
from repro.graphs.rmat import rmat_graph  # noqa: E402
from repro.graphs.synthetic import banded_matrix  # noqa: E402
from repro.plotting import ascii_table  # noqa: E402
from repro.tuner.tuner import _measure, candidate_grid, tune  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

#: The ISSUE 7 zoo — formats this PR added to the registry.
NEW_FORMATS = ("cmrs", "rgcsr", "mpcsr")

#: Acceptance target: merge-path CSR over plain CSR on the skewed
#: scenario, native backend, >=4 cores (ISSUE 7).
FULL_MIN_SPEEDUP = 1.3
QUICK_MIN_SPEEDUP = 1.1

MIN_AFFINITY = 4


def scenarios(quick: bool) -> list[tuple[str, object]]:
    """(name, matrix) pairs; sizes keep the quick leg in CI seconds."""
    if quick:
        nodes, edges, band_n = 1 << 12, 60_000, 20_000
    else:
        nodes, edges, band_n = 1 << 15, 600_000, 120_000
    return [
        ("rmat", rmat_graph(nodes, edges, seed=7)),
        (
            "chung_lu_skewed",
            # exponent < 2 gives a hub head holding a large nnz share —
            # the worst case for per-row work decomposition.
            chung_lu_graph(nodes, edges, exponent=1.8, seed=7),
        ),
        ("banded", banded_matrix(band_n, 16, 12, seed=7)),
    ]


def leaderboard(
    matrix, backends: list[str], *, warmup: int, repeats: int
) -> list[dict]:
    """Time every registered format on every backend, fastest first."""
    rng = np.random.default_rng(0)
    x = rng.random(matrix.n_cols)
    out = np.empty(matrix.n_rows)
    rows: list[dict] = []
    for fmt in format_names():
        for backend in backends:
            record = {"format": fmt, "backend": backend}
            try:
                record["seconds"] = _measure(
                    matrix, fmt, backend, 1, "thread", x, out,
                    warmup=warmup, repeats=repeats,
                )
            except FormatNotApplicableError as exc:
                record["error"] = str(exc)
            rows.append(record)
    rows.sort(key=lambda r: r.get("seconds", float("inf")))
    return rows


def seconds_for(rows: list[dict], fmt: str, backend: str) -> float | None:
    for row in rows:
        if row["format"] == fmt and row["backend"] == backend:
            return row.get("seconds")
    return None


def run(quick: bool) -> tuple[dict, list[str]]:
    host = bench_header()
    affinity = available_cpu_count()
    has_native = native_available()
    hardware_limited = affinity < MIN_AFFINITY
    gate_armed = not hardware_limited and has_native
    min_speedup = QUICK_MIN_SPEEDUP if quick else FULL_MIN_SPEEDUP
    warmup, repeats = (1, 3) if quick else (2, 5)
    backends = list(available_backends())
    # The speedup claim is about the native kernels; the measured
    # comparison below picks the native backend when present and falls
    # back (recorded) to numpy otherwise.
    speedup_backend = "native" if has_native else "numpy"

    failures: list[str] = []
    per_scenario: list[dict] = []
    for name, matrix in scenarios(quick):
        print(
            f"\n=== {name}: {matrix.n_rows:,} rows, "
            f"{matrix.nnz:,} non-zeros ==="
        )
        rows = leaderboard(matrix, backends, warmup=warmup, repeats=repeats)
        table_rows = [
            [
                r["format"],
                r["backend"],
                f"{r['seconds'] * 1e3:.3f}" if "seconds" in r
                else "not applicable",
            ]
            for r in rows
        ]
        print(ascii_table(
            ["format", "backend", "ms/SpMV"], table_rows,
            title=f"{name} leaderboard",
        ))

        grid, grid_meta = candidate_grid(matrix)
        grid_formats = sorted({fmt for fmt, *_ in grid})
        decision = tune(
            matrix, cache=None, warmup=warmup, repeats=repeats
        )
        print(
            f"model kernel: {grid_meta['model_kernel']}  "
            f"grid formats: {grid_formats}"
        )
        print(
            f"tune picked: {decision.format} on {decision.backend} "
            f"({decision.n_shards} shard(s), "
            f"{decision.seconds * 1e3:.3f} ms)"
        )
        per_scenario.append({
            "scenario": name,
            "n_rows": matrix.n_rows,
            "nnz": matrix.nnz,
            "max_row_length": int(matrix.row_lengths().max()),
            "leaderboard": rows,
            "grid_formats": grid_formats,
            "model_kernel": grid_meta["model_kernel"],
            "tune": {
                "format": decision.format,
                "backend": decision.backend,
                "n_shards": decision.n_shards,
                "mode": decision.mode,
                "seconds": decision.seconds,
            },
        })

    # --- gate 1: merge-path vs CSR on the skewed scenario -------------
    skewed = next(
        s for s in per_scenario if s["scenario"] == "chung_lu_skewed"
    )
    csr_s = seconds_for(skewed["leaderboard"], "csr", speedup_backend)
    mp_s = seconds_for(skewed["leaderboard"], "mpcsr", speedup_backend)
    speedup = (csr_s / mp_s) if (csr_s and mp_s) else None
    if gate_armed:
        if speedup is None or speedup < min_speedup:
            failures.append(
                f"mpcsr speedup over csr on chung_lu_skewed "
                f"({speedup if speedup is None else f'{speedup:.2f}x'}) "
                f"below the {min_speedup}x gate"
            )
    else:
        why = []
        if hardware_limited:
            why.append(f"affinity {affinity} < {MIN_AFFINITY}")
        if not has_native:
            why.append("numba toolchain absent")
        print(
            f"\nnote: mpcsr-vs-csr gate disarmed ({'; '.join(why)}) — "
            f"recording measured numbers only"
        )
    if speedup is not None:
        print(
            f"mpcsr vs csr on chung_lu_skewed [{speedup_backend}]: "
            f"{speedup:.2f}x (gate "
            f"{'armed' if gate_armed else 'disarmed'})"
        )

    # --- gate 2: tuner discovery of the zoo ---------------------------
    grid_hits = [
        s["scenario"]
        for s in per_scenario
        if any(f in s["grid_formats"] for f in NEW_FORMATS)
    ]
    tune_hits = [
        s["scenario"]
        for s in per_scenario
        if s["tune"]["format"] in NEW_FORMATS
    ]
    print(f"zoo formats in measured grid on: {grid_hits or 'none'}")
    print(f"zoo formats selected by tune on: {tune_hits or 'none'}")
    if not grid_hits:
        failures.append(
            "no scenario put a zoo format into the tuner's measured "
            "grid — registry predicates/model picks are not flowing"
        )
    if gate_armed and not tune_hits:
        failures.append(
            "tune selected no zoo format on any scenario despite the "
            "hardware gate being armed"
        )

    result = {
        "benchmark": "formats",
        "host": host,
        "native_available": has_native,
        "hardware_limited": hardware_limited,
        "gate_armed": gate_armed,
        "speedup_backend": speedup_backend,
        "mpcsr_vs_csr_chung_lu": speedup,
        "speedup_gate": min_speedup if gate_armed else None,
        "grid_hits": grid_hits,
        "tune_hits": tune_hits,
        "scenarios": per_scenario,
        "quick": quick,
    }
    return result, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrices + regression gates (CI mode)",
    )
    args = parser.parse_args(argv)
    result, failures = run(quick=args.quick)

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_formats.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
