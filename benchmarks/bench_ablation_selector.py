"""Ablation: model-driven kernel selection (paper §5).

"The CSR, CSR-vector and ELL kernels ... can be modeled as special
cases of our tile-composite kernel ... The best predicted kernel can be
chosen to perform real computation of the data."

For a spread of matrix classes the selector's prediction-based choice is
compared against the ground truth (the actually fastest simulated
kernel among the candidates).
"""

from repro.core.lookup import LookupTable
from repro.core.selector import SELECTABLE, select_kernel
from repro.errors import FormatNotApplicableError
from repro.kernels import create
from repro.plotting import ascii_table

from harness import (
    GRAPH_SCALE,
    UNSTRUCTURED_SCALE,
    dataset_device,
    emit,
    load_dataset,
)

CASES = [
    ("flickr", GRAPH_SCALE),
    ("youtube", GRAPH_SCALE),
    ("dense", UNSTRUCTURED_SCALE),
    ("lp", UNSTRUCTURED_SCALE),
    ("fem-harbor", UNSTRUCTURED_SCALE),
]


def test_kernel_selector(benchmark):
    rows = []
    agreements = 0
    for name, scale in CASES:
        ds = load_dataset(name, scale)
        device = dataset_device(name, scale)
        table = LookupTable(device)
        choice = select_kernel(ds.matrix, device, table=table)
        actual = {}
        for kernel in SELECTABLE:
            try:
                actual[kernel] = create(
                    kernel, ds.matrix, device=device
                ).cost().time_seconds
            except FormatNotApplicableError:
                continue
        truth = min(actual, key=lambda k: actual[k])
        # Regret: chosen kernel's actual time over the true best.
        regret = actual.get(choice.kernel, float("inf")) / actual[truth]
        agreements += choice.kernel == truth
        rows.append([name, choice.kernel, truth, regret])
    table_text = ascii_table(
        ["dataset", "model's choice", "actual best", "regret (x)"],
        rows,
        title="Model-driven kernel selection (paper 5): choice vs truth",
    )
    emit("ablation_selector", table_text)

    ds = load_dataset("youtube", GRAPH_SCALE)
    device = dataset_device("youtube", GRAPH_SCALE)
    benchmark.pedantic(
        select_kernel, args=(ds.matrix, device), rounds=1, iterations=1
    )

    # The selector may miss a photo finish, but never by much.
    assert all(row[3] < 1.5 for row in rows)
    assert agreements >= len(CASES) - 1
