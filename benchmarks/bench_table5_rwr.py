"""Table 5: average Random Walk with Restart time over random queries.

Expected shape (paper Appendix F): TILE kernels 1.5-2x over COO/HYB on
Flickr/LiveJournal/Wikipedia, parity on Youtube; GPU 13-37x over CPU.
(The harness averages 3 query nodes instead of the paper's 25: each
query has identical per-iteration work, so the reported averages are
unaffected while the functional run stays fast.)
"""

from harness import emit, mining_tables, run_mining

SCALE = 40.0
DATASETS = ["flickr", "livejournal", "wikipedia", "youtube"]


def test_table5_rwr(benchmark):
    time_table, _gflops, _bw = mining_tables(
        "rwr", "Table 5 - Random Walk with Restart", DATASETS, SCALE
    )
    emit("table5_rwr", time_table)

    def rerun():
        return run_mining.__wrapped__("rwr", "tile-composite",
                                      "youtube", SCALE, n_queries=2)

    benchmark.pedantic(rerun, rounds=1, iterations=1)

    for name in ("flickr", "livejournal", "wikipedia"):
        hyb = run_mining("rwr", "hyb", name, SCALE)
        tile = run_mining("rwr", "tile-composite", name, SCALE)
        assert tile.seconds < hyb.seconds
    for name in DATASETS:
        cpu = run_mining("rwr", "cpu-csr", name, SCALE)
        tile = run_mining("rwr", "tile-composite", name, SCALE)
        assert cpu.seconds / tile.seconds > 5
