"""Wall-clock benchmark of streaming updates vs full rebuilds.

Streams a seeded ~1M-operation edge-update workload through a
:class:`~repro.graphs.dynamic.DynamicMatrix` in batches.  After every
batch the evolved matrix answers one SpMV two ways:

* **incremental** — ``apply_updates`` plus a query through the delta
  overlay (touched-rows submatrix plan over the same backend), with
  threshold-triggered compaction repairing the CSR base in place;
* **rebuild** — merge the logical content and rebuild the same format
  from scratch, then query its fresh plan (what a static pipeline
  would have to do per batch).

Two hard contracts are enforced on every batch: the incremental result
must be **bit-identical** to the rebuild's, and — since CSR declares
``supports_repair`` — compaction must never silently fall back to a
full rebuild (``stats["rebuilds"] == 0``).

The speedup gate compares total incremental update+query seconds
against total rebuild+query seconds.  The work is single-threaded
(O(delta) splices vs O(nnz) rebuilds), so the gate arms on any host —
there is no multicore requirement to be hardware-limited by; the
header still records the core count for context.

Results go to ``benchmarks/results/BENCH_dynamic.json``; ``--quick``
is the CI mode (small graph and stream, gates enforced).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import bench_header  # noqa: E402
from repro.exec.backends import default_backend_name  # noqa: E402
from repro.formats.registry import get_format  # noqa: E402
from repro.graphs.dynamic import (  # noqa: E402
    DynamicMatrix,
    seeded_update_stream,
)
from repro.graphs.rmat import rmat_graph  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

FORMAT = "csr"

#: The streaming regime: many small batches against a much larger
#: base, the shape the overlay is built for.  Each update drags the
#: whole affected row into the overlay (the bitwise contract requires
#: recomputing full rows), and edge-biased sampling on a power-law
#: graph keeps hitting hub rows — so per-batch incremental work grows
#: with ops-per-batch times the *edge-biased* mean degree, while a
#: rebuild always pays O(nnz).  Small batches are where streaming
#: updates beat rebuilds; the configs below pin that regime at two
#: scales.  ``nnz_delta`` is an absolute op count here: it bounds the
#: overlay (and with it per-batch splice cost) independent of base
#: size, trading against O(nnz) compaction frequency.
FULL_NODES, FULL_BASE_EDGES = 1 << 16, 500_000
FULL_STREAM_OPS, FULL_BATCHES = 1_000_000, 2500
FULL_NNZ_DELTA = 4_000
#: Quick run (CI gate): seconds, not minutes.
QUICK_NODES, QUICK_BASE_EDGES = 1 << 14, 200_000
QUICK_STREAM_OPS, QUICK_BATCHES = 30_000, 120
QUICK_NNZ_DELTA = 2_000

#: Acceptance targets: incremental update+query vs rebuild+query.
FULL_MIN_SPEEDUP = 2.0
QUICK_MIN_SPEEDUP = 1.2


def run(quick: bool) -> tuple[dict, list[str]]:
    if quick:
        nodes, base_edges = QUICK_NODES, QUICK_BASE_EDGES
        stream_ops, n_batches = QUICK_STREAM_OPS, QUICK_BATCHES
        nnz_delta = QUICK_NNZ_DELTA
    else:
        nodes, base_edges = FULL_NODES, FULL_BASE_EDGES
        stream_ops, n_batches = FULL_STREAM_OPS, FULL_BATCHES
        nnz_delta = FULL_NNZ_DELTA

    spec = get_format(FORMAT)
    graph = rmat_graph(nodes, base_edges, seed=5)
    dyn = DynamicMatrix(spec.build(graph.to_coo()), nnz_delta=nnz_delta)
    backend = default_backend_name()
    print(
        f"R-MAT n={nodes}: {dyn.nnz:,} base non-zeros as {FORMAT}, "
        f"{stream_ops:,}-op stream in {n_batches} batches, "
        f"backend {backend}"
    )
    t0 = time.perf_counter()
    stream = seeded_update_stream(dyn, stream_ops, seed=7)
    stream_seconds = time.perf_counter() - t0
    bounds = np.linspace(0, len(stream), n_batches + 1).astype(int)
    x = np.random.default_rng(11).random(dyn.n_cols)

    failures: list[str] = []
    batches = []
    apply_total = query_total = rebuild_total = 0.0
    bitwise = True
    for index in range(n_batches):
        batch = stream[bounds[index]:bounds[index + 1]]
        t0 = time.perf_counter()
        dyn.apply_updates(batch)
        t_apply = time.perf_counter() - t0
        t0 = time.perf_counter()
        out = dyn.spmv_plan(backend).execute(x)
        t_query = time.perf_counter() - t0
        t0 = time.perf_counter()
        rebuilt = spec.build(dyn.to_coo())
        reference = rebuilt.spmv_plan(backend).execute(x)
        t_rebuild = time.perf_counter() - t0
        batch_bitwise = bool(np.array_equal(out, reference))
        bitwise &= batch_bitwise
        apply_total += t_apply
        query_total += t_query
        rebuild_total += t_rebuild
        batches.append({
            "batch": index,
            "ops": len(batch),
            "nnz": dyn.nnz,
            "overlay_nnz": dyn.overlay_nnz,
            "apply_seconds": t_apply,
            "query_seconds": t_query,
            "rebuild_seconds": t_rebuild,
            "bitwise": batch_bitwise,
        })
    if not bitwise:
        failures.append("incremental query diverged bitwise from rebuild")
    stats = dict(dyn.stats)
    if spec.supports_repair and stats["rebuilds"] > 0:
        failures.append(
            f"{FORMAT} declares supports_repair but compaction fell back "
            f"to {stats['rebuilds']} full rebuild(s)"
        )
    if stats["compactions"] == 0:
        failures.append(
            "stream never crossed the compaction threshold — the bench "
            "is not exercising repair"
        )

    incremental_seconds = apply_total + query_total
    speedup = (
        rebuild_total / incremental_seconds if incremental_seconds else 0.0
    )
    min_speedup = QUICK_MIN_SPEEDUP if quick else FULL_MIN_SPEEDUP
    if speedup < min_speedup:
        failures.append(
            f"incremental speedup {speedup:.2f}x below the "
            f"{min_speedup}x gate"
        )

    result = {
        "benchmark": "dynamic",
        "host": bench_header(),
        "graph": {
            "generator": "rmat",
            "n_nodes": nodes,
            "requested_edges": base_edges,
            "base_nnz": batches[0]["nnz"] if batches else dyn.nnz,
            "final_nnz": dyn.nnz,
        },
        "format": FORMAT,
        "backend": backend,
        "nnz_delta": nnz_delta,
        "stream": {
            "ops": stream_ops,
            "batches": n_batches,
            "generation_seconds": stream_seconds,
        },
        "totals": {
            "apply_seconds": apply_total,
            "query_seconds": query_total,
            "incremental_seconds": incremental_seconds,
            "rebuild_seconds": rebuild_total,
            "speedup": speedup,
            "speedup_gate": min_speedup,
        },
        "stats": stats,
        # Totals above are exact; the per-batch series is decimated so
        # the committed artifact stays reviewable at full scale.
        "batch_stride": max(1, n_batches // 120),
        "batches": batches[:: max(1, n_batches // 120)],
        "bit_identical": bitwise,
        "hardware_limited": False,  # single-threaded: any host qualifies
        "quick": quick,
    }

    print(
        f"incremental: {incremental_seconds:8.3f} s "
        f"(apply {apply_total:.3f} + query {query_total:.3f})"
    )
    print(f"rebuild:     {rebuild_total:8.3f} s")
    print(
        f"speedup: {speedup:5.2f}x   compactions: {stats['compactions']} "
        f"(repairs {stats['repairs']}, rebuilds {stats['rebuilds']})   "
        f"bitwise: {bitwise}"
    )
    return result, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: small graph and stream, gates enforced",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="result path (default: benchmarks/results/BENCH_dynamic.json)",
    )
    args = parser.parse_args()
    result, failures = run(quick=args.quick)
    out = Path(args.out) if args.out else RESULTS_DIR / "BENCH_dynamic.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
