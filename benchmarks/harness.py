"""Shared infrastructure of the benchmark suite.

Every ``bench_*.py`` module regenerates one table or figure of the
paper: it builds the scaled dataset analogues, runs the simulated
kernels, prints the same rows/series the paper reports (via
``repro.plotting``) and saves the text into ``benchmarks/results/``.
The ``pytest-benchmark`` fixture additionally times the *functional*
SpMV of the headline kernel so the harness doubles as a wall-clock
regression suite.

Absolute simulated numbers are not expected to match the paper's
hardware; the *shape* (who wins, by what factor, where crossovers fall)
is the reproduction target and is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import functools
import os
import platform
from pathlib import Path

import numpy as np

from repro.errors import FormatNotApplicableError
from repro.graphs import datasets
from repro.graphs.datasets import matched_cpu, matched_device
from repro.kernels import create
from repro.plotting import ascii_table

#: Down-scale factors used by the benches (relative to the paper's
#: originals).  Graph datasets at 20x keep every mechanism exercised
#: while a full suite run stays in minutes.
GRAPH_SCALE = 20.0
UNSTRUCTURED_SCALE = 5.0
WEB_SCALE = 400.0

#: Kernel line-up of Figures 2 and 7 (CPU baseline + NVIDIA library +
#: BSK&BDW + the paper's two kernels).
FIG2_KERNELS = [
    "cpu-csr",
    "csr",
    "csr-vector",
    "bsk-bdw",
    "coo",
    "ell",
    "hyb",
    "dia",
    "pkt",
    "tile-coo",
    "tile-composite",
]

#: Kernel line-up of the mining experiments (Tables 1/4/5, Figures 3/8):
#: "the top performing kernels from the previous section".
MINING_KERNELS = ["cpu-csr", "coo", "hyb", "tile-coo", "tile-composite"]

RESULTS_DIR = Path(__file__).parent / "results"


def bench_header() -> dict:
    """Host descriptor stamped into every ``BENCH_*.json`` payload.

    Wall-clock numbers from heterogeneous runners are meaningless
    without the hardware context: the raw core count *and* the affinity
    mask (a CPU-limited container reports the machine's cores but may
    run on one), plus whether the numba JIT toolchain was present —
    these are exactly the facts needed to interpret a
    ``hardware_limited`` flag or a native-vs-numpy speedup later.
    """
    from repro.exec.native import native_available, numba_versions
    from repro.exec.sharded import available_cpu_count

    versions = numba_versions()
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": available_cpu_count(),
        "numpy": np.__version__,
        "numba": versions["numba"],
        "llvmlite": versions["llvmlite"],
        "native_available": native_available(),
    }


@functools.lru_cache(maxsize=None)
def load_dataset(name: str, scale: float):
    """Cached dataset load shared across bench modules."""
    return datasets.load(name, scale=scale)


@functools.lru_cache(maxsize=None)
def dataset_device(name: str, scale: float):
    """Matched device for a cached dataset."""
    return matched_device(load_dataset(name, scale))


@functools.lru_cache(maxsize=None)
def dataset_cpu(name: str, scale: float):
    """Matched CPU sheet for a cached dataset."""
    return matched_cpu(load_dataset(name, scale))


@functools.lru_cache(maxsize=None)
def build_kernel(kernel_name: str, dataset_name: str, scale: float):
    """Cached kernel build (transforms are the expensive part)."""
    ds = load_dataset(dataset_name, scale)
    device = dataset_device(dataset_name, scale)
    options = {}
    if kernel_name == "cpu-csr":
        options["cpu"] = dataset_cpu(dataset_name, scale)
    if kernel_name == "tile-composite":
        options["tuned"] = True
    return create(kernel_name, ds.matrix, device=device, **options)


def kernel_cost(kernel_name: str, dataset_name: str, scale: float):
    """Simulated cost report, or ``None`` when the format refuses the
    matrix (DIA/ELL/PKT on power-law data — the paper reports the same
    failures)."""
    try:
        return build_kernel(kernel_name, dataset_name, scale).cost()
    except FormatNotApplicableError:
        return None


@functools.lru_cache(maxsize=None)
def run_mining(
    algorithm: str,
    kernel_name: str,
    dataset_name: str,
    scale: float,
    *,
    tol: float = 1e-6,
    n_queries: int = 3,
):
    """Cached mining run (PageRank / HITS / RWR) on a named dataset.

    The simulated cost is independent of the functional iteration count
    beyond the realised number of iterations, so a modest tolerance and
    (for RWR) a reduced query count keep the harness fast without
    changing the reported per-iteration GFLOPS.
    """
    from repro.mining import hits, pagerank, random_walk_with_restart

    ds = load_dataset(dataset_name, scale)
    device = dataset_device(dataset_name, scale)
    options = {}
    if kernel_name == "cpu-csr":
        options["cpu"] = dataset_cpu(dataset_name, scale)
    if algorithm == "pagerank":
        return pagerank(
            ds.matrix, kernel=kernel_name, device=device, tol=tol,
            **options,
        )
    if algorithm == "hits":
        return hits(
            ds.matrix, kernel=kernel_name, device=device, tol=tol,
            **options,
        )
    if algorithm == "rwr":
        return random_walk_with_restart(
            ds.matrix, kernel=kernel_name, device=device, tol=tol,
            n_queries=n_queries, **options,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")


def mining_tables(
    algorithm: str,
    title_prefix: str,
    dataset_names: list[str],
    scale: float,
) -> tuple[str, str, str]:
    """(total-seconds, GFLOPS, GB/s) tables for one mining algorithm."""
    time_rows, gflops_rows, bw_rows = [], [], []
    for ds_name in dataset_names:
        t_row, g_row, b_row = [ds_name], [ds_name], [ds_name]
        for k_name in MINING_KERNELS:
            result = run_mining(algorithm, k_name, ds_name, scale)
            t_row.append(result.seconds)
            g_row.append(result.gflops)
            b_row.append(result.bandwidth_gbs)
        time_rows.append(t_row)
        gflops_rows.append(g_row)
        bw_rows.append(b_row)
    headers = ["dataset", *MINING_KERNELS]
    return (
        ascii_table(headers, time_rows, precision=4,
                    title=f"{title_prefix}: total running time (seconds)"),
        ascii_table(headers, gflops_rows,
                    title=f"{title_prefix}: per-iteration speed (GFLOPS)"),
        ascii_table(headers, bw_rows,
                    title=f"{title_prefix}: per-iteration bandwidth (GB/s)"),
    )


def spmv_input(dataset_name: str, scale: float) -> np.ndarray:
    ds = load_dataset(dataset_name, scale)
    return np.random.default_rng(0).random(ds.matrix.n_cols)


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n{'#' * 72}\n# {name}\n{'#' * 72}\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def metric_table(
    title: str,
    dataset_names: list[str],
    kernel_names: list[str],
    scale: float,
    metric: str,
) -> str:
    """GFLOPS or GB/s table: datasets as rows, kernels as columns."""
    rows = []
    for ds_name in dataset_names:
        row = [ds_name]
        for k_name in kernel_names:
            cost = kernel_cost(k_name, ds_name, scale)
            row.append(getattr(cost, metric) if cost else float("nan"))
        rows.append(row)
    return ascii_table(["dataset", *kernel_names], rows, title=title)
