"""Figure 7: SpMV kernel comparison on unstructured matrices.

Expected shape (paper Appendix D): no single kernel wins everywhere;
TILE-COMPOSITE best on the dense matrix (algorithmic bandwidth above the
102 GB/s hardware peak, ~30% over CSR-vector); BSK&BDW strongest on
FEM/Harbor and Protein; HYB strong on Circuit (TILE-COMPOSITE within
~10%); DIA only applicable to the banded matrix.
"""

from harness import (
    FIG2_KERNELS,
    UNSTRUCTURED_SCALE,
    build_kernel,
    emit,
    kernel_cost,
    metric_table,
    spmv_input,
)

DATASETS = ["dense", "circuit", "fem-harbor", "lp", "protein"]


def test_fig7_tables(benchmark):
    gflops = metric_table(
        "Figure 7(a): SpMV speed on unstructured matrices (GFLOPS)",
        DATASETS, FIG2_KERNELS, UNSTRUCTURED_SCALE, "gflops",
    )
    bandwidth = metric_table(
        "Figure 7(b): SpMV bandwidth on unstructured matrices (GB/s)",
        DATASETS, FIG2_KERNELS, UNSTRUCTURED_SCALE, "bandwidth_gbs",
    )
    emit("fig7_spmv_unstructured", "\n\n".join([gflops, bandwidth]))

    kernel = build_kernel("tile-composite", "dense", UNSTRUCTURED_SCALE)
    x = spmv_input("dense", UNSTRUCTURED_SCALE)
    benchmark(kernel.spmv, x)

    # Anchor assertions from the paper's text.
    dense_tile = kernel_cost("tile-composite", "dense", UNSTRUCTURED_SCALE)
    dense_vec = kernel_cost("csr-vector", "dense", UNSTRUCTURED_SCALE)
    assert dense_tile.gflops > dense_vec.gflops, (
        "tile-composite must beat CSR-vector on the dense matrix"
    )
    assert dense_tile.bandwidth_gbs > 90, (
        "texture hits should push the dense bandwidth metric near/past peak"
    )
    circuit_tile = kernel_cost("tile-composite", "circuit",
                               UNSTRUCTURED_SCALE)
    circuit_hyb = kernel_cost("hyb", "circuit", UNSTRUCTURED_SCALE)
    assert circuit_tile.gflops > 0.8 * circuit_hyb.gflops, (
        "tile-composite should stay within ~10-20% of HYB on circuit"
    )
