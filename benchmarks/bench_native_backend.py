"""Wall-clock benchmark of the GIL-free multicore path.

Runs a fixed-iteration PageRank power method over a paper-scale R-MAT
graph three ways on the same canonical operator:

* **baseline** — single shard on the numpy backend, the PR-1 engine
  path every prior bench reports;
* **native** — single shard on the ``native`` backend (numba-compiled
  CSR row-split kernel, ``parallel=True`` when the affinity mask
  allows);
* **native+process** — 4 shards on the ``native`` backend through
  ``ShardedExecutor(mode="process")``: JIT kernels *and* worker
  processes, the tentpole configuration.

Bit-identity is the hard contract and is enforced everywhere: every
sharded/process run must match the single-shard run **on the same
resolved backend** bit for bit (the native and numpy backends are
mutually last-ulp, not bitwise — the differential suite pins that
boundary).  The ≥2x speedup gate (≥1.2x for ``--quick``) arms only
when the host can express it: ``len(sched_getaffinity) >= 4`` *and*
the numba toolchain importable.  Anywhere else the measured numbers
are recorded with ``hardware_limited``/``native_available`` flags so a
1-core or JIT-less runner reports honestly instead of failing.

Results go to ``benchmarks/results/BENCH_native.json``; ``--quick`` is
the CI mode.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_sharded_executor import executor_pagerank  # noqa: E402
from harness import bench_header  # noqa: E402
from repro.exec.backends import get_backend  # noqa: E402
from repro.exec.native import native_available  # noqa: E402
from repro.exec.sharded import (  # noqa: E402
    ShardedExecutor,
    available_cpu_count,
)
from repro.graphs.rmat import rmat_graph  # noqa: E402
from repro.mining.pagerank import pagerank_operator  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

#: Full run: ~1.86M non-zeros after canonicalisation, 100 iterations.
FULL_NODES, FULL_EDGES, FULL_ITERATIONS = 1 << 17, 2_000_000, 100
#: Quick run (CI gate): seconds, not minutes.
QUICK_NODES, QUICK_EDGES, QUICK_ITERATIONS = 1 << 13, 150_000, 30

N_SHARDS = 4
#: Acceptance target for the full run (ISSUE 6): JIT + processes must
#: at least double the numpy single-shard baseline on a >=4-core host.
FULL_MIN_SPEEDUP = 2.0
QUICK_MIN_SPEEDUP = 1.2


def bench_config(
    operator, *, n_shards: int, backend: str, mode: str, iterations: int
) -> tuple[np.ndarray, dict]:
    with ShardedExecutor(
        operator, n_shards, backend=backend, mode=mode
    ) as ex:
        vector, _, elapsed = executor_pagerank(ex, iterations)
        stats = {
            "backend_requested": backend,
            "backend_resolved": ex.backend,
            "mode": ex.mode,
            "n_shards": ex.n_shards,
            "worker_pids": len(ex.worker_pids),
            "seconds": elapsed,
            "iterations_per_second": iterations / elapsed,
        }
    return vector, stats


def run(quick: bool) -> tuple[dict, list[str]]:
    if quick:
        nodes, edges, iterations = QUICK_NODES, QUICK_EDGES, QUICK_ITERATIONS
    else:
        nodes, edges, iterations = FULL_NODES, FULL_EDGES, FULL_ITERATIONS

    host = bench_header()
    affinity = available_cpu_count()
    has_native = native_available()
    hardware_limited = affinity < N_SHARDS
    gate_armed = not hardware_limited and has_native

    graph = rmat_graph(nodes, edges, seed=5)
    operator = pagerank_operator(graph)
    print(
        f"R-MAT n={nodes}: {operator.n_rows:,} vertices, "
        f"{operator.nnz:,} non-zeros, {iterations} PageRank iterations, "
        f"affinity={affinity}, native_available={has_native}"
    )

    # The baseline is pinned to numpy (not the registry default, which
    # may be scipy): the ISSUE's 2x claim is against the GIL-bound
    # interpreter path, and on JIT-less hosts "native" resolves to
    # numpy, keeping the fallback comparison below bitwise.
    p_base, baseline = bench_config(
        operator, n_shards=1, backend="numpy", mode="thread",
        iterations=iterations,
    )
    baseline_seconds = baseline["seconds"]
    p_native, native = bench_config(
        operator, n_shards=1, backend="native", mode="thread",
        iterations=iterations,
    )
    p_multi, multicore = bench_config(
        operator, n_shards=N_SHARDS, backend="native", mode="process",
        iterations=iterations,
    )
    # The bitwise reference for the native runs: the single-shard
    # executor on whatever backend "native" resolved to.
    failures: list[str] = []
    if not np.array_equal(p_multi, p_native):
        failures.append(
            "native+process PageRank diverged bitwise from the "
            "single-shard native run"
        )
    if get_backend("native").name == "numpy":
        # Fallback host: "native" ran the numpy plans, so everything
        # must also be bitwise against the numpy baseline.
        if not np.array_equal(p_native, p_base):
            failures.append(
                "fallback native run diverged bitwise from the numpy "
                "baseline"
            )
    else:
        np.testing.assert_allclose(
            p_native, p_base, rtol=1e-9, atol=1e-12
        )

    speedup = baseline_seconds / multicore["seconds"]
    min_speedup = QUICK_MIN_SPEEDUP if quick else FULL_MIN_SPEEDUP
    if gate_armed:
        if speedup < min_speedup:
            failures.append(
                f"native+process speedup {speedup:.2f}x below the "
                f"{min_speedup}x gate"
            )
    else:
        why = []
        if hardware_limited:
            why.append(f"affinity {affinity} < {N_SHARDS} shards")
        if not has_native:
            why.append("numba toolchain absent")
        print(
            f"note: speedup gate disarmed ({'; '.join(why)}) — "
            f"recording measured numbers only"
        )

    result = {
        "benchmark": "native_backend",
        "host": host,
        "graph": {
            "generator": "rmat",
            "n_nodes": nodes,
            "requested_edges": edges,
            "n_rows": operator.n_rows,
            "nnz": operator.nnz,
        },
        "native_available": has_native,
        "hardware_limited": hardware_limited,
        "gate_armed": gate_armed,
        "pagerank": {
            "iterations": iterations,
            "baseline_numpy_seconds": baseline_seconds,
            "baseline_iterations_per_second": iterations / baseline_seconds,
            "native_single": native,
            "native_process": multicore,
            "speedup_vs_baseline": speedup,
            "speedup_gate": min_speedup if gate_armed else None,
        },
        "bit_identical": not any("bitwise" in f for f in failures),
        "quick": quick,
    }

    print(
        f"baseline (numpy, 1 shard):   {baseline_seconds:8.3f} s "
        f"({iterations / baseline_seconds:8.1f} it/s)"
    )
    for label, stats in (
        ("native, 1 shard", native),
        (f"native+process, {N_SHARDS} shards", multicore),
    ):
        print(
            f"{label + ':':<29}{stats['seconds']:8.3f} s "
            f"({stats['iterations_per_second']:8.1f} it/s)  "
            f"[resolved {stats['backend_resolved']}/{stats['mode']}]"
        )
    print(f"speedup vs baseline: {speedup:5.2f}x (gate "
          f"{'armed' if gate_armed else 'disarmed'})")
    return result, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph + regression gates (CI mode)",
    )
    args = parser.parse_args(argv)
    result, failures = run(quick=args.quick)

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_native.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
