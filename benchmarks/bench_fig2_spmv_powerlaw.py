"""Figure 2: SpMV kernel comparison on power-law matrices.

Regenerates Figure 2(a) (GFLOPS) and 2(b) (GB/s) over the five
power-law datasets of Table 2.  Expected shape (paper 4.1): TILE-COO
and TILE-COMPOSITE dominate on Flickr/LiveJournal/Wikipedia
(~1.95x average over HYB); COO/HYB close the gap on Webbase/Youtube
(~13-36%); DIA/PKT/ELL fail on power-law inputs.
"""

import pytest

from harness import (
    FIG2_KERNELS,
    GRAPH_SCALE,
    build_kernel,
    emit,
    kernel_cost,
    metric_table,
    spmv_input,
)

DATASETS = ["webbase", "flickr", "livejournal", "wikipedia", "youtube"]


def test_fig2_tables(benchmark):
    gflops = metric_table(
        "Figure 2(a): SpMV speed on power-law matrices (GFLOPS)",
        DATASETS, FIG2_KERNELS, GRAPH_SCALE, "gflops",
    )
    bandwidth = metric_table(
        "Figure 2(b): SpMV bandwidth on power-law matrices (GB/s)",
        DATASETS, FIG2_KERNELS, GRAPH_SCALE, "bandwidth_gbs",
    )
    speedups = []
    for name in DATASETS:
        tile = kernel_cost("tile-composite", name, GRAPH_SCALE)
        hyb = kernel_cost("hyb", name, GRAPH_SCALE)
        speedups.append([name, tile.gflops / hyb.gflops])
    from repro.plotting import ascii_table

    summary = ascii_table(
        ["dataset", "tile-composite / hyb"],
        speedups,
        title="Headline speedup over NVIDIA's best kernel "
        "(paper: 1.95x avg on flickr/livejournal/wikipedia)",
    )
    emit("fig2_spmv_powerlaw", "\n\n".join([gflops, bandwidth, summary]))

    kernel = build_kernel("tile-composite", "flickr", GRAPH_SCALE)
    x = spmv_input("flickr", GRAPH_SCALE)
    benchmark(kernel.spmv, x)

    big = [s for name, s in speedups
           if name in ("flickr", "livejournal", "wikipedia")]
    assert min(big) > 1.4, "tile-composite lost its headline speedup"


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig2_spmv_wallclock(benchmark, dataset):
    """Wall-clock regression of the functional tile-composite SpMV."""
    kernel = build_kernel("tile-composite", dataset, GRAPH_SCALE)
    x = spmv_input(dataset, GRAPH_SCALE)
    benchmark(kernel.spmv, x)
