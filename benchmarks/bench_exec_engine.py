"""Wall-clock benchmark of the execution engine vs the per-call path.

Runs a fixed-iteration PageRank power method over an R-MAT graph twice:

* **legacy** — the seed implementation's per-call CSR SpMV
  (``np.repeat`` of the row map + ``np.bincount`` scatter-add, fresh
  temporaries every call) with allocating vector updates;
* **engine** — the cached-plan path (``np.add.reduceat`` over
  precomputed segments, pooled buffers, ``out=`` writes, double-buffered
  iterates).

Also times the batched SpMM path against column-wise SpMV calls and
verifies the zero-allocation steady state (the workspace pool stops
allocating after the first execution).

Results go to ``benchmarks/results/BENCH_exec.json``.  ``--quick`` runs
a small graph and **fails** (exit 1) when the engine speedup drops below
``QUICK_MIN_SPEEDUP`` — the CI perf-regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import bench_header  # noqa: E402
from repro.exec.backends import default_backend_name  # noqa: E402
from repro.exec.plan import PLAN_CACHE_STATS  # noqa: E402
from repro.formats.csr import CSRMatrix  # noqa: E402
from repro.graphs.rmat import rmat_graph  # noqa: E402
from repro.mining.pagerank import pagerank_operator  # noqa: E402
from repro.mining.power_method import l1_delta  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

#: Full run: >=1M non-zeros, the paper-scale mining workload.
FULL_NODES, FULL_EDGES, FULL_ITERATIONS = 1 << 17, 2_000_000, 100
#: Quick run (CI gate): seconds, not minutes.
QUICK_NODES, QUICK_EDGES, QUICK_ITERATIONS = 1 << 13, 150_000, 30
#: The quick gate trips well before the ~3x headline evaporates.
QUICK_MIN_SPEEDUP = 1.5

DAMPING = 0.85


def legacy_spmv(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """The seed implementation's CSR SpMV, temporaries and all."""
    x = np.asarray(x, dtype=np.float64)
    if csr.nnz == 0:
        return np.zeros(csr.n_rows, dtype=np.float64)
    products = csr.data * x[csr.indices]
    row_of = np.repeat(np.arange(csr.n_rows), np.diff(csr.indptr))
    return np.bincount(row_of, weights=products, minlength=csr.n_rows)


def legacy_pagerank(csr: CSRMatrix, iterations: int) -> np.ndarray:
    """Seed-style power method: every iteration allocates O(nnz)."""
    n = csr.n_rows
    p0 = np.full(n, 1.0 / n)
    p = p0.copy()
    for _ in range(iterations):
        new_p = DAMPING * legacy_spmv(csr, p) + (1.0 - DAMPING) * p0
        l1_delta(new_p, p)
        p = new_p
    return p


def engine_pagerank(
    csr: CSRMatrix, iterations: int, backend: str | None = None
) -> np.ndarray:
    """Plan-cached power method: zero allocation per iteration."""
    plan = csr.spmv_plan(backend)
    n = csr.n_rows
    p0 = np.full(n, 1.0 / n)
    p = p0.copy()
    new_p = np.empty(n)
    scratch = np.empty(n)
    base = (1.0 - DAMPING) * p0
    for _ in range(iterations):
        plan.execute(p, out=new_p)
        np.multiply(new_p, DAMPING, out=new_p)
        new_p += base
        l1_delta(new_p, p, scratch=scratch)
        p, new_p = new_p, p
    return p


def bench_spmm(csr: CSRMatrix, k: int, repeats: int) -> dict:
    """Batched SpMM vs k column-wise SpMV calls on the same plan."""
    rng = np.random.default_rng(7)
    X = rng.random((csr.n_cols, k))
    Y = np.empty((csr.n_rows, k))
    ycol = np.empty(csr.n_rows)
    csr.spmm(X, out=Y)  # warm the batched buffers

    start = time.perf_counter()
    for _ in range(repeats):
        for j in range(k):
            csr.spmv(np.ascontiguousarray(X[:, j]), out=ycol)
    columnwise = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(repeats):
        csr.spmm(X, out=Y)
    batched = time.perf_counter() - start

    for j in range(k):
        csr.spmv(np.ascontiguousarray(X[:, j]), out=ycol)
        assert np.array_equal(Y[:, j], ycol), "spmm column mismatch"
    return {
        "rhs_columns": k,
        "repeats": repeats,
        "columnwise_seconds": columnwise,
        "batched_seconds": batched,
        "speedup": columnwise / batched if batched > 0 else float("inf"),
    }


def run(quick: bool) -> dict:
    if quick:
        nodes, edges, iterations = QUICK_NODES, QUICK_EDGES, QUICK_ITERATIONS
    else:
        nodes, edges, iterations = FULL_NODES, FULL_EDGES, FULL_ITERATIONS

    graph = rmat_graph(nodes, edges, seed=5)
    operator = pagerank_operator(graph)
    csr = CSRMatrix.from_coo(operator)
    print(
        f"R-MAT n={nodes}: {csr.n_rows:,} vertices, "
        f"{csr.nnz:,} non-zeros, {iterations} PageRank iterations"
    )

    start = time.perf_counter()
    p_legacy = legacy_pagerank(csr, iterations)
    legacy_seconds = time.perf_counter() - start

    PLAN_CACHE_STATS.reset()
    start = time.perf_counter()
    plan = csr.spmv_plan()
    plan_build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    p_engine = engine_pagerank(csr, iterations)
    engine_seconds = time.perf_counter() - start

    csr.spmv_plan("numpy")  # build outside the timed region
    start = time.perf_counter()
    p_numpy = engine_pagerank(csr, iterations, backend="numpy")
    numpy_seconds = time.perf_counter() - start

    # Same fixed-point up to summation order (bincount accumulates in
    # index order, reduceat pairwise).
    assert np.allclose(p_legacy, p_engine, rtol=1e-12, atol=1e-14)
    assert np.allclose(p_legacy, p_numpy, rtol=1e-12, atol=1e-14)

    # Zero-allocation steady state: the pool must not grow any more.
    allocations_before = plan.pool.allocations
    x = np.full(csr.n_cols, 1.0 / csr.n_cols)
    y = np.empty(csr.n_rows)
    for _ in range(3):
        csr.spmv(x, out=y)
    assert plan.pool.allocations == allocations_before, (
        "workspace pool allocated in steady state"
    )

    speedup = legacy_seconds / engine_seconds if engine_seconds else float("inf")
    result = {
        "benchmark": "exec_engine",
        "host": bench_header(),
        "graph": {
            "generator": "rmat",
            "n_nodes": nodes,
            "requested_edges": edges,
            "n_rows": csr.n_rows,
            "nnz": csr.nnz,
        },
        "pagerank": {
            "iterations": iterations,
            "backend": default_backend_name(),
            "legacy_seconds": legacy_seconds,
            "engine_seconds": engine_seconds,
            "engine_numpy_seconds": numpy_seconds,
            "plan_build_seconds": plan_build_seconds,
            "legacy_iterations_per_second": iterations / legacy_seconds,
            "engine_iterations_per_second": iterations / engine_seconds,
            "speedup": speedup,
            "numpy_backend_speedup": legacy_seconds / numpy_seconds,
        },
        "spmm": bench_spmm(csr, k=8, repeats=3 if quick else 10),
        "plan_cache": {
            "builds": PLAN_CACHE_STATS.builds,
            "hits": PLAN_CACHE_STATS.hits,
        },
        "steady_state_pool_allocations": 0,
        "quick": quick,
    }

    print(
        f"legacy:  {legacy_seconds:8.3f} s "
        f"({result['pagerank']['legacy_iterations_per_second']:8.1f} it/s)"
    )
    print(
        f"engine:  {engine_seconds:8.3f} s "
        f"({result['pagerank']['engine_iterations_per_second']:8.1f} it/s)"
        f"  [{default_backend_name()} backend, "
        f"+ {plan_build_seconds * 1e3:.1f} ms one-off plan build]"
    )
    print(
        f"numpy:   {numpy_seconds:8.3f} s "
        f"({iterations / numpy_seconds:8.1f} it/s)"
    )
    print(f"speedup: {speedup:8.2f}x   spmm: {result['spmm']['speedup']:.2f}x")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph + regression gate (CI mode)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_exec.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.quick and result["pagerank"]["speedup"] < QUICK_MIN_SPEEDUP:
        print(
            f"FAIL: speedup {result['pagerank']['speedup']:.2f}x below the "
            f"{QUICK_MIN_SPEEDUP}x regression gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
