"""Figure 4: multi-GPU PageRank scalability on web graphs.

Regenerates the GFLOPS-vs-GPU-count curves for the four Table 3 web
crawls, TILE-Composite (solid lines in the paper) against HYB (dotted).
The per-GPU memory limit is scaled with the datasets so the paper's
feasibility pattern carries over (sk-2005 from 3 GPUs, uk-union from 6).

Expected shape: near-linear early scaling, 60-80% parallel efficiency
in the mid range, curves flattening as the allgather communication
dominates; TILE-Composite ~1.5-2x over HYB throughout.
"""

import pytest

from repro.errors import DeviceMemoryError
from repro.gpu.spec import DeviceSpec
from repro.multigpu import ClusterSpec, simulate_spmv
from repro.plotting import ascii_table

from harness import WEB_SCALE, load_dataset, emit

DATASETS = ["it-2004", "web-2001", "sk-2005", "uk-union"]
GPU_COUNTS = [1, 2, 3, 4, 6, 8, 10]

#: Per-GPU memory limit (bytes), chosen so that at WEB_SCALE the
#: feasibility pattern matches the paper: sk-2005 needs >= 3 GPUs,
#: uk-union >= 6 (it-2004/web-2001 fit from 2).
GPU_MEMORY_LIMIT = int(24.5e6)


def web_device() -> DeviceSpec:
    """Device matched to the web-graph scale: launch overhead and the
    Little's-law point scale with the data; the texture cache scales
    mildly so tile counts stay paper-like."""
    base = DeviceSpec.tesla_c1060()
    return base.scaled(
        texture_cache_bytes=256 * 1024 // 20,
        kernel_launch_seconds=base.kernel_launch_seconds / WEB_SCALE,
        global_latency_cycles=max(
            20.0, base.global_latency_cycles / WEB_SCALE
        ),
    )


def scaling_series(matrix, kernel: str, device: DeviceSpec):
    """(gpus, gflops, efficiency) rows; infeasible counts are skipped."""
    rows = []
    baseline = None
    for n_gpus in GPU_COUNTS:
        cluster = ClusterSpec(
            n_gpus=n_gpus, device=device,
            gpu_memory_bytes=GPU_MEMORY_LIMIT,
        )
        try:
            report = simulate_spmv(matrix, cluster, kernel=kernel)
        except DeviceMemoryError:
            rows.append([n_gpus, float("nan"), float("nan")])
            continue
        if baseline is None:
            baseline = report
        rows.append(
            [n_gpus, report.gflops, report.parallel_efficiency(baseline)]
        )
    return rows


def test_fig4_multigpu(benchmark):
    device = web_device()
    blocks = []
    ratios = []
    for name in DATASETS:
        ds = load_dataset(name, WEB_SCALE)
        tile_rows = scaling_series(ds.matrix, "tile-composite", device)
        hyb_rows = scaling_series(ds.matrix, "hyb", device)
        merged = [
            [t[0], t[1], t[2], h[1], h[2]]
            for t, h in zip(tile_rows, hyb_rows)
        ]
        blocks.append(
            ascii_table(
                ["gpus", "tile-comp GFLOPS", "tile-comp eff",
                 "hyb GFLOPS", "hyb eff"],
                merged,
                title=f"Figure 4 - multi-GPU PageRank scaling: {name} "
                f"(nnz={ds.nnz})",
            )
        )
        # tile vs hyb ratio where both ran.
        for t, h in zip(tile_rows, hyb_rows):
            if t[1] == t[1] and h[1] == h[1]:
                ratios.append(t[1] / h[1])
    emit("fig4_multigpu", "\n\n".join(blocks))

    # One representative distributed simulation under the timer.
    ds = load_dataset("it-2004", WEB_SCALE)
    cluster = ClusterSpec(
        n_gpus=4, device=device, gpu_memory_bytes=GPU_MEMORY_LIMIT
    )
    benchmark.pedantic(
        simulate_spmv, args=(ds.matrix, cluster),
        kwargs={"kernel": "hyb"}, rounds=1, iterations=1,
    )

    # Paper: tile-composite ~1.55x HYB across datasets and GPU counts.
    assert min(ratios) > 1.1
    # Feasibility pattern.
    sk = load_dataset("sk-2005", WEB_SCALE)
    with pytest.raises(DeviceMemoryError):
        simulate_spmv(
            sk.matrix,
            ClusterSpec(n_gpus=2, device=device,
                        gpu_memory_bytes=GPU_MEMORY_LIMIT),
            kernel="hyb",
        )
