"""Ablation: multi-GPU partition schemes (paper 3.2).

The paper argues for row partitioning with the bitonic deal: rows beat
columns on communication volume (each node broadcasts N/P instead of N
elements), and bitonic balances both rows (communication) and non-zeros
(computation) against a naive contiguous split.
"""

import numpy as np

from repro.multigpu.bitonic import (
    bitonic_partition,
    contiguous_partition,
    partition_balance,
)
from repro.plotting import ascii_table

from harness import WEB_SCALE, emit, load_dataset

P = 8


def test_partition_ablation(benchmark):
    ds = load_dataset("it-2004", WEB_SCALE)
    lengths = ds.matrix.row_lengths()

    bitonic = partition_balance(
        lengths, bitonic_partition(lengths, P), P
    )
    contiguous = partition_balance(
        lengths, contiguous_partition(lengths.size, P), P
    )
    # Adversarial case: a length-sorted matrix (as produced by the
    # preprocessing) makes contiguous splits catastrophic.
    sorted_lengths = np.sort(lengths)[::-1]
    contiguous_sorted = partition_balance(
        sorted_lengths, contiguous_partition(lengths.size, P), P
    )
    bitonic_sorted = partition_balance(
        sorted_lengths, bitonic_partition(sorted_lengths, P), P
    )

    balance = ascii_table(
        ["scheme", "nnz imbalance (max/mean)", "row imbalance"],
        [
            ["bitonic", bitonic.nnz_imbalance, bitonic.row_imbalance],
            ["contiguous", contiguous.nnz_imbalance,
             contiguous.row_imbalance],
            ["bitonic (sorted rows)", bitonic_sorted.nnz_imbalance,
             bitonic_sorted.row_imbalance],
            ["contiguous (sorted rows)",
             contiguous_sorted.nnz_imbalance,
             contiguous_sorted.row_imbalance],
        ],
        title=f"Row-partition balance on it-2004 analogue, P={P}",
    )

    # Communication volume: rows vs columns (paper 3.2's argument).
    n = ds.matrix.n_rows
    comm = ascii_table(
        ["scheme", "floats sent per node per iteration"],
        [
            ["by rows", n / P],
            ["by columns", n],
            ["by grid (sqrt(P) x sqrt(P))",
             n / np.sqrt(P) + n / P],
        ],
        title="Broadcast volume per node (paper 3.2: rows win)",
    )
    emit("ablation_partition", balance + "\n\n" + comm)

    benchmark.pedantic(
        bitonic_partition, args=(lengths, P), rounds=3, iterations=1
    )

    assert bitonic_sorted.nnz_imbalance < contiguous_sorted.nnz_imbalance
    assert bitonic.row_imbalance <= 1.01
