"""Figure 3: PageRank per-iteration performance and bandwidth.

Expected shape: the same ordering as Figure 2, since the SpMV dominates
each PageRank iteration (the vector kernels add a few percent).
"""

from harness import GRAPH_SCALE, emit, mining_tables, run_mining

DATASETS = ["flickr", "livejournal", "wikipedia", "youtube"]


def test_fig3_pagerank(benchmark):
    _time, gflops, bandwidth = mining_tables(
        "pagerank", "Figure 3 - PageRank", DATASETS, GRAPH_SCALE
    )
    emit("fig3_pagerank", gflops + "\n\n" + bandwidth)

    def per_iteration_gflops():
        return run_mining(
            "pagerank", "tile-composite", "flickr", GRAPH_SCALE
        ).gflops

    value = benchmark(per_iteration_gflops)
    assert value > 0
