"""Wall-clock benchmark of the measured auto-tuner (``repro.tuner``).

Two claims are gated:

* **tuned >= best static within noise** — the tuner's decided engine
  must reach at least ``MIN_RELATIVE_THROUGHPUT`` of the best
  *statically chosen* configuration's iterations/second on a fixed
  SpMV loop.  (The tuner measures the same candidates, so it can only
  lose to noise — a bigger loss means the decision plumbing is broken.)
* **cache-hit tuning is O(1)** — a second :func:`repro.tuner.tune` call
  on the same matrix must resolve from the persistent cache with zero
  measurement runs and a wall time bounded by ``MAX_CACHED_SECONDS``
  (fingerprinting plus one small-file read; no SpMV is executed).

Results go to ``benchmarks/results/BENCH_tuner.json``; ``--quick`` is
the CI mode (small graph, gates enforced).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import bench_header  # noqa: E402
from repro.exec.backends import available_backends  # noqa: E402
from repro.exec.sharded import ShardedExecutor, auto_shard_count  # noqa: E402
from repro.formats.convert import to_format  # noqa: E402
from repro.graphs.rmat import rmat_graph  # noqa: E402
from repro.tuner import TuningCache, tune  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

FULL_NODES, FULL_EDGES, FULL_SPMVS = 1 << 15, 500_000, 200
QUICK_NODES, QUICK_EDGES, QUICK_SPMVS = 1 << 12, 65_536, 60

#: Tuned throughput must reach this fraction of the best static
#: configuration (the ISSUE's "within 10%" acceptance bound).
MIN_RELATIVE_THROUGHPUT = 0.90

#: A cache-hit tune() call performs no SpMV; even on a loaded CI box
#: fingerprint + JSON read finishes well inside this bound.
MAX_CACHED_SECONDS = 1.0


#: Throughput rounds: every configuration (statics and the tuned
#: engine) is measured once per round, and the per-configuration
#: median over rounds is reported — interleaving cancels the slow
#: machine-load drift that sequential measurement would alias into a
#: spurious win or loss for whichever config ran last.
N_ROUNDS = 3


def loop_throughput(run, n_spmvs: int) -> float:
    """Iterations/second of a fixed-count SpMV loop (after warmup)."""
    run()
    start = time.perf_counter()
    for _ in range(n_spmvs):
        run()
    return n_spmvs / (time.perf_counter() - start)


def static_configurations(matrix) -> list[dict]:
    """The grid a static chooser would pick from: every format the
    tuner's pruning could reach x available backends x {1, auto}."""
    configs = []
    shard_counts = sorted({1, auto_shard_count(matrix.nnz)})
    for fmt in ("csr", "ell", "hyb"):
        try:
            formatted = to_format(matrix, fmt)
        except Exception:
            continue
        for backend in available_backends():
            for n_shards in shard_counts:
                configs.append({
                    "format": fmt,
                    "backend": backend,
                    "n_shards": n_shards,
                    "matrix": formatted,
                })
    return configs


def static_runner(config, x, out):
    """A closure executing one static configuration (plus its closer)."""
    formatted = config["matrix"]
    if config["n_shards"] == 1:
        plan = formatted.spmv_plan(config["backend"])
        return (lambda: plan.execute(x, out=out)), (lambda: None)
    executor = ShardedExecutor(
        formatted, config["n_shards"], backend=config["backend"]
    )
    return (lambda: executor.spmv(x, out=out)), executor.close


def run_benchmark(quick: bool) -> dict:
    nodes, edges, n_spmvs = (
        (QUICK_NODES, QUICK_EDGES, QUICK_SPMVS)
        if quick
        else (FULL_NODES, FULL_EDGES, FULL_SPMVS)
    )
    matrix = rmat_graph(nodes, edges, seed=7)
    x = np.random.default_rng(0).random(matrix.n_cols)
    out = np.empty(matrix.n_rows)

    with tempfile.TemporaryDirectory() as tmp:
        cache = TuningCache(Path(tmp) / "tuner_cache.json")
        start = time.perf_counter()
        decision = tune(matrix, cache=cache)
        first_seconds = time.perf_counter() - start
        start = time.perf_counter()
        cached_decision = tune(matrix, cache=cache)
        cached_seconds = time.perf_counter() - start

    engine = decision.build_engine(matrix)
    runners = []
    closers = [engine.close]
    for config in static_configurations(matrix):
        run, close = static_runner(config, x, out)
        runners.append((config, run, []))
        closers.append(close)
    tuned_samples: list[float] = []
    try:
        for _ in range(N_ROUNDS):
            for _config, run, samples in runners:
                samples.append(loop_throughput(run, n_spmvs))
            tuned_samples.append(loop_throughput(
                lambda: engine.spmv(x, out=out), n_spmvs
            ))
    finally:
        for close in closers:
            close()

    static_rows = [
        {
            "format": config["format"],
            "backend": config["backend"],
            "n_shards": config["n_shards"],
            "iterations_per_second": sorted(samples)[len(samples) // 2],
            "rounds": samples,
        }
        for config, _run, samples in runners
    ]
    best_static = max(
        static_rows, key=lambda r: r["iterations_per_second"]
    )
    tuned_ips = sorted(tuned_samples)[len(tuned_samples) // 2]
    relative = tuned_ips / best_static["iterations_per_second"]
    gates = {
        "tuned_within_noise_of_best_static": relative
        >= MIN_RELATIVE_THROUGHPUT,
        "cache_hit_is_o1": (
            cached_decision.from_cache
            and cached_seconds <= MAX_CACHED_SECONDS
        ),
        "cached_decision_identical": (
            cached_decision.to_dict() == decision.to_dict()
        ),
    }
    return {
        "benchmark": "tuner",
        "host": bench_header(),
        "quick": quick,
        "graph": {
            "generator": "rmat",
            "n_nodes": nodes,
            "requested_edges": edges,
            "nnz": matrix.nnz,
        },
        "n_spmvs": n_spmvs,
        "static": static_rows,
        "best_static": {
            k: v for k, v in best_static.items()
        },
        "decision": decision.to_dict(),
        "tuned_iterations_per_second": tuned_ips,
        "relative_to_best_static": relative,
        "first_tune_seconds": first_seconds,
        "cached_tune_seconds": cached_seconds,
        "gates": gates,
        "all_gates_passed": all(gates.values()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run"
    )
    args = parser.parse_args(argv)
    report = run_benchmark(args.quick)
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_tuner.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["gates"], indent=2))
    print(
        f"tuned {report['tuned_iterations_per_second']:.0f} it/s vs "
        f"best static {report['best_static']['iterations_per_second']:.0f} "
        f"it/s (x{report['relative_to_best_static']:.3f}); cache hit in "
        f"{report['cached_tune_seconds'] * 1e3:.1f} ms "
        f"(first tune {report['first_tune_seconds'] * 1e3:.1f} ms)"
    )
    print(f"report written to {out_path}")
    return 0 if report["all_gates_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
