"""Ablation: partition-camping padding (paper 3.1).

The paper pads 256 bytes onto any workload whose size is a multiple of
512 floats, so concurrent warps spread over all 8 memory partitions.
This bench builds a matrix whose uniform rows produce exactly such
aligned workloads and compares the composite kernel with the fix on and
off; it also confirms the fix is a no-op on an irregular power-law
matrix whose workload sizes never align.
"""

import numpy as np

from repro.formats.coo import COOMatrix
from repro.gpu.spec import DeviceSpec
from repro.kernels import create
from repro.plotting import ascii_table

from harness import GRAPH_SCALE, dataset_device, emit, load_dataset


def aligned_matrix(n: int = 8192, per_row: int = 16) -> COOMatrix:
    """Exactly ``per_row`` entries per row: with workload size 512
    floats every workload is a 16x32 rectangle of exactly one
    partition stride — the paper's worst case."""
    rows = np.repeat(np.arange(n), per_row)
    cols = (
        rows * 17 + np.tile(np.arange(per_row), n) * 513
    ) % n
    return COOMatrix.from_unsorted(
        rows, cols, np.ones(rows.size), (n, n), sum_duplicates=False
    )


def test_camping_ablation(benchmark):
    aligned = aligned_matrix()
    device = DeviceSpec.tesla_c1060()
    rows = []
    cases = [
        ("aligned-uniform", aligned, device,
         {"n_tiles": 1, "workload_sizes": [512]}),
        ("flickr-analogue",
         load_dataset("flickr", GRAPH_SCALE).matrix,
         dataset_device("flickr", GRAPH_SCALE), {}),
    ]
    for label, matrix, dev, options in cases:
        on = create(
            "tile-composite", matrix, device=dev, avoid_camping=True,
            **options,
        ).cost()
        off = create(
            "tile-composite", matrix, device=dev, avoid_camping=False,
            **options,
        ).cost()
        rows.append(
            [label, on.gflops, off.gflops, off.time_seconds
             / on.time_seconds]
        )
    table = ascii_table(
        ["matrix", "GFLOPS (padded)", "GFLOPS (camped)",
         "slowdown without fix"],
        rows,
        title="Partition-camping ablation "
        "(256B pad on stride-aligned workloads, paper 3.1)",
    )
    emit("ablation_camping", table)

    benchmark.pedantic(
        lambda: create(
            "tile-composite", aligned, device=device,
            avoid_camping=False, n_tiles=1, workload_sizes=[512],
        ).cost(),
        rounds=1, iterations=1,
    )

    aligned_slowdown = rows[0][3]
    graph_slowdown = rows[1][3]
    assert aligned_slowdown > 1.5, "camping penalty should bite"
    assert graph_slowdown < 1.2, "fix must be ~free on irregular data"
