"""Load test of the coalescing query service.

Fires waves of concurrent single-seed PPR queries at a warm
:class:`~repro.serve.QueryService` and measures three legs, interleaved
wave by wave so they see the same machine conditions:

* **coalesced** — the service with its batcher on (``max_batch=8``):
  each 8-client wave fuses into one batched-SpMM walk;
* **serial** — the *same serving stack* with coalescing disabled
  (``max_batch=1``): every query runs its own width-1 walk, serialised
  per graph exactly as a non-coalescing server would behave under the
  same 8 concurrent clients.  This is the ablation the speedup gate
  compares against;
* **solo floor** — bare library calls (:func:`repro.serve.seeded_solo`
  on a warm engine, no service, no threads): the per-query cost floor,
  reported for honesty.  Against this floor the coalescing win is the
  batched-SpMM amortisation alone (~1.4x at this shape — SpMM gathers
  the matrix once for all 8 columns, but the per-column convergence
  bookkeeping does not amortise).

Two hard gates:

* every reply from **both** service legs is **bitwise-identical** to
  its solo run — coalescing (and the width-1 path) must be invisible
  in the numbers;
* coalesced throughput is at least ``MIN_SPEEDUP`` times the serial
  (batcher-off) service at 8 concurrent clients.

Results go to ``benchmarks/results/BENCH_serve.json``; ``--quick`` is
the CI mode (same graph, fewer waves, gates enforced).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import bench_header  # noqa: E402
from repro.graphs.rmat import rmat_graph  # noqa: E402
from repro.mining.pagerank import pagerank_operator  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.serve import QueryService, seeded_solo  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

CLIENTS = 8  # concurrent clients per wave (the ISSUE's gate point)
ALPHA = 0.85
TOL = 1e-8
MAX_ITER = 200

#: SpMM amortises the matrix gather across columns, so the coalescing
#: win scales with nnz work per node: a mean degree of ~15+ keeps the
#: un-amortisable per-column bookkeeping from dominating.  Growing n
#: instead hurts — the dense iterate state (four n x k matrices)
#: scales with n while the gather amortisation does not.  Both configs
#: therefore pin the BENCH_exec graph shape (n=8192, ~125k nnz); the
#: full run just takes more waves for tighter statistics.
NODES, EDGES = 1 << 13, 150_000
FULL_WAVES, QUICK_WAVES = 20, 4

#: Coalesced throughput over the batcher-off service at 8 clients.
MIN_SPEEDUP = 1.5


def run(quick: bool) -> tuple[dict, list[str]]:
    waves = QUICK_WAVES if quick else FULL_WAVES
    nodes, edges = NODES, EDGES

    graph = rmat_graph(nodes, edges, seed=13)
    rng = np.random.default_rng(29)
    wave_seeds = [
        [int(s) for s in rng.integers(0, nodes, size=CLIENTS)]
        for _ in range(waves)
    ]
    n_queries = waves * CLIENTS
    print(
        f"R-MAT n={nodes}: {graph.nnz:,} non-zeros, "
        f"{waves} waves x {CLIENTS} concurrent clients "
        f"({n_queries} PPR queries, tol {TOL:g})"
    )

    failures: list[str] = []
    operator = pagerank_operator(graph)

    prior = obs_metrics.enabled()
    obs_metrics.enable()
    obs_metrics.METRICS.reset()
    coalescing = QueryService(
        window_seconds=0.002, max_batch=CLIENTS, max_queue=4 * CLIENTS,
    )
    coalescing.register("bench", graph)
    serial = QueryService(
        window_seconds=0.002, max_batch=1, max_queue=4 * CLIENTS,
    )
    serial.register("bench", graph)

    async def wave(service, seeds):
        return await asyncio.gather(*(
            service.query(
                "bench", algorithm="ppr", seed=seed, alpha=ALPHA,
                tol=TOL, max_iter=MAX_ITER,
            )
            for seed in seeds
        ))

    def solo_wave(seeds):
        return {
            seed: seeded_solo(
                operator, nodes, seed, alpha=ALPHA, tol=TOL,
                max_iter=MAX_ITER,
            )
            for seed in seeds
        }

    async def drive():
        # Warm every path outside the timed region: both services'
        # engines and the solo leg's cached plan.
        await wave(coalescing, wave_seeds[0][:1])
        await wave(serial, wave_seeds[0][:1])
        solo_wave(wave_seeds[0][:1])
        coalesced_replies = []
        serial_replies = []
        solo_results = {}
        seconds = {"coalesced": 0.0, "serial": 0.0, "solo": 0.0}
        for seeds in wave_seeds:
            t0 = time.perf_counter()
            coalesced_replies.extend(await wave(coalescing, seeds))
            seconds["coalesced"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            serial_replies.extend(await wave(serial, seeds))
            seconds["serial"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            solo_results.update(solo_wave(seeds))
            seconds["solo"] += time.perf_counter() - t0
        return coalesced_replies, serial_replies, solo_results, seconds

    try:
        coalesced_replies, serial_replies, solo_results, seconds = (
            asyncio.run(drive())
        )

        mismatches = 0
        for replies in (coalesced_replies, serial_replies):
            for reply in replies:
                reference = reply.solo()
                solo = solo_results[reply.seed]
                if not (
                    reply.iterations == reference.iterations
                    and np.array_equal(reply.vector, reference.vector)
                    and np.array_equal(reply.vector, solo.vector)
                ):
                    mismatches += 1
        if mismatches:
            failures.append(
                f"{mismatches} replies diverged bitwise from solo runs"
            )

        widths = [r.batch_width for r in coalesced_replies]
        coalesced_fraction = (
            sum(1 for w in widths if w > 1) / len(coalesced_replies)
        )
        if any(r.batch_width != 1 for r in serial_replies):
            failures.append("the batcher-off service coalesced a batch")
        sla = coalescing.sla_report()
    finally:
        coalescing.close()
        serial.close()
        obs_metrics.METRICS.reset()
        if not prior:
            obs_metrics.disable()

    qps = {leg: n_queries / t for leg, t in seconds.items()}
    speedup = qps["coalesced"] / qps["serial"]
    solo_ratio = qps["coalesced"] / qps["solo"]
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"coalesced throughput {speedup:.2f}x the batcher-off "
            f"service is below the {MIN_SPEEDUP}x gate"
        )
    if coalesced_fraction < 0.5:
        failures.append(
            f"only {coalesced_fraction:.0%} of replies were coalesced — "
            "the load test is not exercising the batcher"
        )

    result = {
        "benchmark": "serve",
        "host": bench_header(),
        "graph": {
            "generator": "rmat",
            "n_nodes": nodes,
            "requested_edges": edges,
            "nnz": graph.nnz,
        },
        "workload": {
            "clients": CLIENTS,
            "waves": waves,
            "queries": n_queries,
            "algorithm": "ppr",
            "alpha": ALPHA,
            "tol": TOL,
            "window_seconds": 0.002,
            "max_batch": CLIENTS,
        },
        "legs": {
            "coalesced": {
                "seconds": seconds["coalesced"],
                "queries_per_second": qps["coalesced"],
                "coalesced_fraction": coalesced_fraction,
                "mean_batch_width": float(np.mean(widths)),
                "max_batch_width": int(max(widths)),
            },
            "serial": {
                "description": "same service, max_batch=1 (batcher off)",
                "seconds": seconds["serial"],
                "queries_per_second": qps["serial"],
            },
            "solo_floor": {
                "description": "bare seeded_solo on a warm engine",
                "seconds": seconds["solo"],
                "queries_per_second": qps["solo"],
            },
        },
        "speedup_vs_serial_service": speedup,
        "speedup_vs_solo_floor": solo_ratio,
        "speedup_gate": MIN_SPEEDUP,
        "bitwise_checked": len(coalesced_replies) + len(serial_replies),
        "bitwise_mismatches": mismatches,
        "sla": sla,
        # The gated win is SpMM column amortisation plus not paying the
        # per-query serving overhead 8 times — no parallelism involved,
        # so the gate arms on a single-core host.
        "hardware_limited": False,
        "quick": quick,
    }

    print(
        f"solo floor: {seconds['solo']:7.3f} s  "
        f"({qps['solo']:7.1f} queries/s; bare library calls)"
    )
    print(
        f"serial:     {seconds['serial']:7.3f} s  "
        f"({qps['serial']:7.1f} queries/s; service, batcher off)"
    )
    print(
        f"coalesced:  {seconds['coalesced']:7.3f} s  "
        f"({qps['coalesced']:7.1f} queries/s, "
        f"{coalesced_fraction:.0%} coalesced, "
        f"mean width {np.mean(widths):.1f})"
    )
    print(
        f"speedup: {speedup:5.2f}x vs serial service (gate "
        f"{MIN_SPEEDUP}x), {solo_ratio:5.2f}x vs solo floor   "
        f"bitwise mismatches: {mismatches}"
    )
    return result, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: same graph, fewer waves, gates enforced",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="result path (default: benchmarks/results/BENCH_serve.json)",
    )
    args = parser.parse_args()
    result, failures = run(quick=args.quick)
    out = Path(args.out) if args.out else RESULTS_DIR / "BENCH_serve.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
