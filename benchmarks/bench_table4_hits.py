"""Table 4: total HITS running time per kernel.

Expected shape (paper Appendix F): 17-29x GPU-over-CPU; TILE kernels
beat COO/HYB on every dataset — including Youtube, because the combined
``2|V| x 2|V|`` HITS matrix is larger and sparser, which favours the
tiling optimisations.
"""

from harness import emit, mining_tables, run_mining

#: HITS doubles the matrix, so run one scale step smaller than Table 1.
SCALE = 40.0
DATASETS = ["flickr", "livejournal", "wikipedia", "youtube"]


def test_table4_hits(benchmark):
    time_table, _gflops, _bw = mining_tables(
        "hits", "Table 4 - HITS", DATASETS, SCALE
    )
    emit("table4_hits", time_table)

    def rerun():
        return run_mining.__wrapped__("hits", "tile-composite",
                                      "youtube", SCALE)

    benchmark.pedantic(rerun, rounds=1, iterations=1)

    for name in DATASETS:
        cpu = run_mining("hits", "cpu-csr", name, SCALE)
        tile = run_mining("hits", "tile-composite", name, SCALE)
        hyb = run_mining("hits", "hyb", name, SCALE)
        assert cpu.seconds / tile.seconds > 5
        assert tile.seconds < hyb.seconds
