"""Figure 5: parameter auto-tuning and performance-model validation.

Three panels over the five power-law matrices:

(a) number of tiles — auto-tuned (Algorithm 1) vs exhaustive search;
(b) kernel GFLOPS under the auto-tuned parameters vs the exhaustive
    optimum (paper: within 3%);
(c) model-predicted vs "measured" (simulated-kernel) GFLOPS under the
    auto-tuned parameters (paper: within ~20%).
"""

from repro.core.autotune import autotune, exhaustive_search
from repro.kernels import create
from repro.plotting import ascii_table

from harness import GRAPH_SCALE, dataset_device, emit, load_dataset

DATASETS = ["webbase", "flickr", "livejournal", "wikipedia", "youtube"]


def tune_one(name: str):
    ds = load_dataset(name, GRAPH_SCALE)
    device = dataset_device(name, GRAPH_SCALE)
    tuned = autotune(ds.matrix, device)
    best = exhaustive_search(ds.matrix, device, max_candidates=10)
    k_auto = create(
        "tile-composite", ds.matrix, device=device,
        **tuned.as_build_kwargs(),
    )
    k_best = create(
        "tile-composite", ds.matrix, device=device,
        **best.as_build_kwargs(),
    )
    measured = k_auto.cost()
    predicted_gflops = (
        2 * ds.matrix.nnz / tuned.predicted_seconds / 1e9
        if tuned.predicted_seconds > 0 else float("nan")
    )
    return {
        "auto_tiles": tuned.n_tiles,
        "best_tiles": best.n_tiles,
        "auto_gflops": measured.gflops,
        "best_gflops": k_best.cost().gflops,
        "predicted_gflops": predicted_gflops,
    }


def test_fig5_autotune(benchmark):
    results = {name: tune_one(name) for name in DATASETS}

    tiles = ascii_table(
        ["dataset", "auto-tuned tiles", "exhaustive tiles"],
        [[n, r["auto_tiles"], r["best_tiles"]]
         for n, r in results.items()],
        title="Figure 5(a): number of tiles, auto vs exhaustive",
    )
    perf = ascii_table(
        ["dataset", "auto GFLOPS", "exhaustive GFLOPS", "auto/exhaustive"],
        [[n, r["auto_gflops"], r["best_gflops"],
          r["auto_gflops"] / r["best_gflops"]]
         for n, r in results.items()],
        title="Figure 5(b): performance, auto vs exhaustive "
        "(paper: within 3%)",
    )
    model = ascii_table(
        ["dataset", "measured GFLOPS", "predicted GFLOPS",
         "prediction error"],
        [[n, r["auto_gflops"], r["predicted_gflops"],
          abs(r["predicted_gflops"] - r["auto_gflops"])
          / r["auto_gflops"]]
         for n, r in results.items()],
        title="Figure 5(c): predicted vs measured "
        "(paper: within ~20%)",
    )
    emit("fig5_autotune", "\n\n".join([tiles, perf, model]))

    ds = load_dataset("youtube", GRAPH_SCALE)
    device = dataset_device("youtube", GRAPH_SCALE)
    benchmark.pedantic(
        autotune, args=(ds.matrix, device), rounds=1, iterations=1
    )

    for name, r in results.items():
        assert abs(r["auto_tiles"] - r["best_tiles"]) <= 3, name
        assert r["auto_gflops"] >= 0.90 * r["best_gflops"], name
        error = abs(r["predicted_gflops"] - r["auto_gflops"])
        assert error / r["auto_gflops"] < 0.40, name
