"""Per-scenario format win/loss leaderboard over the scenario corpus.

Every scenario in :mod:`repro.graphs.scenarios` — the base families
plus the adversarial structure tail — is generated at a fixed seed and
timed across every registered format on every available backend with
the tuner's own ``_measure`` (same methodology as ``repro tune`` and
``bench_formats``).  Per scenario the fastest (format, backend) cell
wins; the aggregate win/loss table is the corpus-wide record future
format PRs must not regress.

Before any timing, every (scenario, format) cell is correctness-checked
against the COO reference — bitwise for formats whose plans share the
canonical reduction, last-ulp otherwise.  Gates (exit non-zero):

* **zero casualties** — no cell may produce wrong numbers;
* **csr coverage** — the baseline format must measure on every
  scenario (a casualty there means the harness itself broke);
* **corpus floor** — >= 12 scenarios, >= 6 adversarial.

Results go to ``benchmarks/results/BENCH_scenarios.json`` with the
environment header; ``--quick`` is the CI mode (smaller scale).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import bench_header  # noqa: E402
from repro.errors import FormatNotApplicableError  # noqa: E402
from repro.exec.backends import available_backends  # noqa: E402
from repro.formats.convert import to_format  # noqa: E402
from repro.formats.registry import format_names, specs  # noqa: E402
from repro.graphs import scenarios as corpus_mod  # noqa: E402
from repro.plotting import ascii_table  # noqa: E402
from repro.tuner.fingerprint import matrix_fingerprint  # noqa: E402
from repro.tuner.tuner import _measure  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 29
QUICK_SCALE = 0.5
FULL_SCALE = 2.0

BITWISE_FORMATS = {spec.name for spec in specs() if spec.bitwise}


def check_cell(matrix, fmt: str, backend: str, x, ref) -> str | None:
    """Correctness check for one cell; returns an error string or None."""
    try:
        built = to_format(matrix, fmt)
    except FormatNotApplicableError:
        return None  # recorded as not-applicable, not a casualty
    out = built.spmv_plan(backend).execute(x)
    if backend in ("scipy", "native") or fmt in BITWISE_FORMATS:
        if not np.array_equal(out, ref):
            return f"{fmt}/{backend}: bitwise mismatch vs COO reference"
    elif not np.allclose(out, ref, rtol=1e-12, atol=1e-13):
        return f"{fmt}/{backend}: drifted beyond last-ulp tolerance"
    return None


def sweep_scenario(
    spec, scale: float, backends: list[str], *, warmup: int, repeats: int
) -> tuple[dict, list[str]]:
    """Leaderboard + casualty list for one scenario."""
    matrix = corpus_mod.generate_scenario(spec.name, scale=scale, seed=SEED)
    rng = np.random.default_rng(1)
    x = rng.random(matrix.n_cols)
    out = np.empty(matrix.n_rows)
    casualties: list[str] = []
    rows: list[dict] = []
    for fmt in format_names():
        for backend in backends:
            ref = matrix.spmv_plan(backend).execute(x)
            error = check_cell(matrix, fmt, backend, x, ref)
            if error is not None:
                casualties.append(f"{spec.name}: {error}")
                continue
            record = {"format": fmt, "backend": backend}
            try:
                record["seconds"] = _measure(
                    matrix, fmt, backend, 1, "thread", x, out,
                    warmup=warmup, repeats=repeats,
                )
            except FormatNotApplicableError as exc:
                record["error"] = str(exc)
            rows.append(record)
    rows.sort(key=lambda r: r.get("seconds", float("inf")))
    winner = rows[0] if rows and "seconds" in rows[0] else None
    return {
        "scenario": spec.name,
        "adversarial": spec.adversarial,
        "tags": list(spec.tags),
        "shape": [matrix.n_rows, matrix.n_cols],
        "nnz": matrix.nnz,
        "fingerprint": matrix_fingerprint(matrix),
        "leaderboard": rows,
        "winner": winner,
    }, casualties


def run(quick: bool) -> tuple[dict, list[str]]:
    host = bench_header()
    scale = QUICK_SCALE if quick else FULL_SCALE
    warmup, repeats = (1, 3) if quick else (2, 5)
    backends = list(available_backends())
    corpus = corpus_mod.corpus()

    failures: list[str] = []
    casualties: list[str] = []
    per_scenario: list[dict] = []
    wins: dict[str, int] = {fmt: 0 for fmt in format_names()}
    measured: dict[str, int] = {fmt: 0 for fmt in format_names()}

    for spec in corpus:
        result, dead = sweep_scenario(
            spec, scale, backends, warmup=warmup, repeats=repeats
        )
        casualties.extend(dead)
        per_scenario.append(result)
        for row in result["leaderboard"]:
            if "seconds" in row:
                measured[row["format"]] += 1
        if result["winner"]:
            wins[result["winner"]["format"]] += 1
        winner = result["winner"]
        print(
            f"{spec.name:26s} {result['shape'][0]:>6,} x "
            f"{result['shape'][1]:<6,} nnz {result['nnz']:>8,}  "
            + (
                f"winner {winner['format']}/{winner['backend']} "
                f"({winner['seconds'] * 1e6:.1f} us)"
                if winner
                else "no measurable cell"
            )
        )

    # Win/loss aggregate: scenarios won vs scenarios measured-but-lost.
    table = [
        [fmt, wins[fmt], max(0, measured[fmt] // max(1, len(backends)) - wins[fmt])]
        for fmt in sorted(wins, key=lambda f: -wins[f])
    ]
    print(ascii_table(
        ["format", "wins", "losses"], table,
        title=f"Corpus win/loss over {len(corpus)} scenarios "
        f"({len(corpus_mod.adversarial_names())} adversarial)",
    ))

    # --- gates ---------------------------------------------------------
    if casualties:
        failures.append(
            f"{len(casualties)} correctness casualt"
            f"{'y' if len(casualties) == 1 else 'ies'}: "
            + "; ".join(casualties[:5])
        )
    csr_missing = [
        s["scenario"]
        for s in per_scenario
        if not any(
            r["format"] == "csr" and "seconds" in r
            for r in s["leaderboard"]
        )
    ]
    if csr_missing:
        failures.append(f"csr baseline unmeasured on: {csr_missing}")
    if len(corpus) < 12 or len(corpus_mod.adversarial_names()) < 6:
        failures.append(
            f"corpus floor violated: {len(corpus)} scenarios, "
            f"{len(corpus_mod.adversarial_names())} adversarial"
        )

    result = {
        "benchmark": "scenarios",
        "host": host,
        "quick": quick,
        "scale": scale,
        "seed": SEED,
        "n_scenarios": len(corpus),
        "n_adversarial": len(corpus_mod.adversarial_names()),
        "casualties": casualties,
        "wins": {f: w for f, w in wins.items() if w},
        "scenarios": per_scenario,
    }
    return result, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale + regression gates (CI mode)",
    )
    args = parser.parse_args(argv)
    result, failures = run(quick=args.quick)

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_scenarios.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
