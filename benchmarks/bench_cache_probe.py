"""Texture-cache size probe (paper 3.1, Solution 1).

"We mod the column indices of a large sparse matrix by tile width, so
all accesses to vector x are mapped to one tile.  We vary the tile width
from 100K to 1K and run the multiplication.  The performance improves
most significantly when tile width = 64K, corresponding to 256 KB of
cache size."

The probe folds the flickr analogue's columns modulo a sweep of widths
and runs the COO kernel; the sharpest improvement must occur where the
folded ``x`` segment first fits the (matched, scaled) texture cache.
"""

import numpy as np

from repro.formats.coo import COOMatrix
from repro.kernels import create
from repro.plotting import ascii_table

from harness import GRAPH_SCALE, dataset_device, emit, load_dataset


def folded_matrix(matrix: COOMatrix, width: int) -> COOMatrix:
    """Map every access to one ``width``-column tile (cols mod width)."""
    return COOMatrix.from_unsorted(
        matrix.rows,
        matrix.cols % width,
        matrix.data,
        (matrix.n_rows, width),
        sum_duplicates=False,
    )


def test_cache_size_probe(benchmark):
    ds = load_dataset("flickr", GRAPH_SCALE)
    device = dataset_device("flickr", GRAPH_SCALE)
    cache_width = device.tile_width_columns

    # Sweep widths around the cache size, the paper's 100K -> 1K sweep
    # mapped onto the scaled device.
    widths = sorted(
        {
            int(cache_width * f)
            for f in (16, 8, 4, 2, 1, 0.5, 0.25)
        }
    )
    rows = []
    gflops = {}
    for width in widths:
        kernel = create("coo", folded_matrix(ds.matrix, width),
                        device=device)
        cost = kernel.cost()
        gflops[width] = cost.gflops
        hit = cost.details.get("coo_x_hit_rate", float("nan"))
        rows.append([width, width * 4, hit, cost.gflops])
    table = ascii_table(
        ["tile width (cols)", "x bytes", "x hit rate", "GFLOPS"],
        rows,
        title="Texture-cache probe: fold columns mod width "
        f"(device cache = {device.texture_cache_bytes} B "
        f"= {cache_width} columns)",
    )
    emit("cache_probe", table)

    benchmark.pedantic(
        lambda: create(
            "coo", folded_matrix(ds.matrix, cache_width), device=device
        ).cost(),
        rounds=1, iterations=1,
    )

    # The knee: largest improvement between consecutive widths happens
    # when the fold first fits the cache.
    sorted_widths = sorted(gflops, reverse=True)  # large -> small
    gains = {
        small: gflops[small] / gflops[big]
        for big, small in zip(sorted_widths, sorted_widths[1:])
    }
    knee = max(gains, key=lambda w: gains[w])
    assert knee <= cache_width * 2, (
        f"cache knee at width {knee}, expected near {cache_width}"
    )
