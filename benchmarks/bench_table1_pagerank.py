"""Table 1: total PageRank running time per kernel.

Expected shape (paper 4.2): TILE-COO and TILE-COMPOSITE ~2x faster than
COO/HYB on Flickr/LiveJournal/Wikipedia, marginal gains on Youtube; all
GPU kernels 18-32x faster than the CPU implementation.
"""

from harness import GRAPH_SCALE, emit, mining_tables, run_mining

DATASETS = ["flickr", "livejournal", "wikipedia", "youtube"]


def test_table1_pagerank(benchmark):
    time_table, _gflops, _bw = mining_tables(
        "pagerank", "Table 1 - PageRank", DATASETS, GRAPH_SCALE
    )
    emit("table1_pagerank", time_table)

    result = run_mining("pagerank", "tile-composite", "flickr", GRAPH_SCALE)
    benchmark.pedantic(
        lambda: run_mining.__wrapped__(
            "pagerank", "tile-composite", "youtube", GRAPH_SCALE
        ),
        rounds=1, iterations=1,
    )

    # GPU vs CPU band (paper: 18-32x).
    for name in DATASETS:
        cpu = run_mining("pagerank", "cpu-csr", name, GRAPH_SCALE)
        tile = run_mining("pagerank", "tile-composite", name, GRAPH_SCALE)
        speedup = cpu.seconds / tile.seconds
        assert speedup > 5, f"GPU speedup collapsed on {name}: {speedup:.1f}x"
    # Tile kernels beat COO/HYB on the three skewed graphs.
    for name in ("flickr", "livejournal", "wikipedia"):
        hyb = run_mining("pagerank", "hyb", name, GRAPH_SCALE)
        tile = run_mining("pagerank", "tile-composite", name, GRAPH_SCALE)
        assert tile.seconds < hyb.seconds
    assert result.converged
