"""Figure 8: HITS and RWR per-iteration performance and bandwidth.

Expected shape: same ordering as PageRank (Figure 3); TILE-COO and
TILE-Composite lead on the three large skewed graphs and the four GPU
kernels are near parity on Youtube.
"""

from harness import emit, mining_tables, run_mining

SCALE = 40.0
DATASETS = ["flickr", "livejournal", "wikipedia", "youtube"]


def test_fig8_hits_rwr(benchmark):
    _t, hits_gflops, hits_bw = mining_tables(
        "hits", "Figure 8(a,b) - HITS", DATASETS, SCALE
    )
    _t, rwr_gflops, rwr_bw = mining_tables(
        "rwr", "Figure 8(c,d) - RWR", DATASETS, SCALE
    )
    emit(
        "fig8_hits_rwr",
        "\n\n".join([hits_gflops, hits_bw, rwr_gflops, rwr_bw]),
    )

    value = benchmark(
        lambda: run_mining("hits", "tile-composite", "flickr", SCALE).gflops
    )
    assert value > 0
