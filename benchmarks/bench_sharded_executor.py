"""Wall-clock benchmark of the sharded parallel SpMV executor.

Runs a fixed-iteration PageRank power method over an R-MAT graph three
ways on the same canonical operator:

* **single** — one shard, the PR-1 cached-plan engine path;
* **bitonic** — 4 nnz-balanced shards on the persistent thread pool;
* **contiguous** — 4 equal-row-block shards, the balance baseline.

The sharded runs must be **bit-identical** to the single-shard run
(hard failure otherwise), and the report records measured per-shard
wall seconds so the §3.2 balance claim is checked against a clock.

Sharding only pays on multi-core hosts (SciPy's matvec and numpy's
ufunc loops release the GIL, but one core is one core), so the speedup
gates arm only when ``os.cpu_count() >= 4``; on smaller hosts the
numbers are recorded with ``hardware_limited: true``.  The auto-policy
no-slowdown gate — a matrix below the nnz threshold must stay on the
dispatch-free single-shard path — runs everywhere.

Results go to ``benchmarks/results/BENCH_sharded.json``; ``--quick`` is
the CI mode (small graph, gates enforced).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import bench_header  # noqa: E402
from repro.exec.backends import default_backend_name  # noqa: E402
from repro.exec.sharded import (  # noqa: E402
    AUTO_MIN_NNZ_PER_SHARD,
    ShardedExecutor,
    auto_shard_count,
)
from repro.graphs.rmat import rmat_graph  # noqa: E402
from repro.mining.pagerank import pagerank_operator  # noqa: E402
from repro.mining.power_method import l1_delta  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

#: Full run: ~1.9M non-zeros, the ISSUE's paper-scale target.
FULL_NODES, FULL_EDGES, FULL_ITERATIONS = 1 << 17, 2_000_000, 100
#: Quick run (CI gate): seconds, not minutes.
QUICK_NODES, QUICK_EDGES, QUICK_ITERATIONS = 1 << 13, 150_000, 30

N_SHARDS = 4
#: Acceptance target for the full run on a >=4-core host.
FULL_MIN_SPEEDUP = 2.0
#: CI gate for the quick run on a >=4-core host (smaller matrix, more
#: dispatch overhead per flop).
QUICK_MIN_SPEEDUP = 1.2
#: Auto policy: a below-threshold matrix may cost at most this factor
#: over the plain engine path (it runs the identical code plus one
#: method indirection, so anything above noise is a regression).
NO_SLOWDOWN_TOLERANCE = 1.25

DAMPING = 0.85


def executor_pagerank(
    executor: ShardedExecutor, iterations: int
) -> tuple[np.ndarray, np.ndarray, float]:
    """Fixed-iteration power method through an executor.

    Returns the final vector, the mean per-shard wall seconds per
    iteration, and the total wall seconds.
    """
    n = executor.n_rows
    p0 = np.full(n, 1.0 / n)
    p = p0.copy()
    new_p = np.empty(n)
    scratch = np.empty(n)
    base = (1.0 - DAMPING) * p0
    executor.spmv(p, out=new_p)  # warm-up: grow every shard's pool
    shard_acc = np.zeros(executor.n_shards)
    start = time.perf_counter()
    for _ in range(iterations):
        executor.spmv(p, out=new_p)
        shard_acc += executor.last_shard_seconds
        np.multiply(new_p, DAMPING, out=new_p)
        new_p += base
        l1_delta(new_p, p, scratch=scratch)
        p, new_p = new_p, p
    elapsed = time.perf_counter() - start
    return p, shard_acc / iterations, elapsed


def plan_pagerank(matrix, iterations: int) -> tuple[np.ndarray, float]:
    """The PR-1 engine loop on the matrix's own cached plan."""
    plan = matrix.spmv_plan()
    n = matrix.n_rows
    p0 = np.full(n, 1.0 / n)
    p = p0.copy()
    new_p = np.empty(n)
    scratch = np.empty(n)
    base = (1.0 - DAMPING) * p0
    plan.execute(p, out=new_p)  # warm-up
    start = time.perf_counter()
    for _ in range(iterations):
        plan.execute(p, out=new_p)
        np.multiply(new_p, DAMPING, out=new_p)
        new_p += base
        l1_delta(new_p, p, scratch=scratch)
        p, new_p = new_p, p
    elapsed = time.perf_counter() - start
    return p, elapsed


def bench_partition(
    operator, partition: str, iterations: int
) -> tuple[np.ndarray, dict]:
    with ShardedExecutor(operator, N_SHARDS, partition=partition) as ex:
        vector, shard_seconds, elapsed = executor_pagerank(ex, iterations)
        balance = ex.balance()
        mean = float(shard_seconds.mean())
        stats = {
            "partition": partition,
            "n_shards": N_SHARDS,
            "seconds": elapsed,
            "iterations_per_second": iterations / elapsed,
            "nnz_per_shard": ex.shard_nnz.tolist(),
            "nnz_imbalance": float(balance.nnz_imbalance),
            "mean_shard_seconds": shard_seconds.tolist(),
            "measured_imbalance": (
                float(shard_seconds.max()) / mean if mean > 0 else None
            ),
        }
    return vector, stats


def bench_auto_policy(iterations: int = 200) -> dict:
    """A matrix under the nnz threshold must not pay for sharding."""
    graph = rmat_graph(1 << 11, 30_000, seed=9)
    operator = pagerank_operator(graph)
    assert operator.nnz < AUTO_MIN_NNZ_PER_SHARD
    with ShardedExecutor(operator, "auto") as ex:
        auto_shards = ex.n_shards
        plain_seconds = min(
            plan_pagerank(operator, iterations)[1] for _ in range(3)
        )
        auto_seconds = min(
            executor_pagerank(ex, iterations)[2] for _ in range(3)
        )
    return {
        "nnz": operator.nnz,
        "auto_shards": auto_shards,
        "iterations": iterations,
        "plain_seconds": plain_seconds,
        "auto_seconds": auto_seconds,
        "ratio": auto_seconds / plain_seconds,
        "tolerance": NO_SLOWDOWN_TOLERANCE,
    }


def run(quick: bool) -> tuple[dict, list[str]]:
    if quick:
        nodes, edges, iterations = QUICK_NODES, QUICK_EDGES, QUICK_ITERATIONS
    else:
        nodes, edges, iterations = FULL_NODES, FULL_EDGES, FULL_ITERATIONS

    cpu_count = os.cpu_count() or 1
    hardware_limited = cpu_count < N_SHARDS
    graph = rmat_graph(nodes, edges, seed=5)
    operator = pagerank_operator(graph)
    print(
        f"R-MAT n={nodes}: {operator.n_rows:,} vertices, "
        f"{operator.nnz:,} non-zeros, {iterations} PageRank iterations, "
        f"{cpu_count} cores"
    )

    with ShardedExecutor(operator, 1) as single:
        p_single, _, single_seconds = executor_pagerank(single, iterations)
    p_bitonic, bitonic = bench_partition(operator, "bitonic", iterations)
    p_contig, contiguous = bench_partition(operator, "contiguous", iterations)

    failures: list[str] = []
    # Bit-identity is the hard contract — never hardware-dependent.
    if not np.array_equal(p_single, p_bitonic):
        failures.append("bitonic sharded PageRank diverged bitwise")
    if not np.array_equal(p_single, p_contig):
        failures.append("contiguous sharded PageRank diverged bitwise")

    speedup = single_seconds / bitonic["seconds"]
    auto = bench_auto_policy()
    if auto["auto_shards"] != auto_shard_count(auto["nnz"]):
        failures.append("auto policy ignored the nnz threshold")
    if auto["ratio"] > NO_SLOWDOWN_TOLERANCE:
        failures.append(
            f"auto-policy path {auto['ratio']:.2f}x slower than the plain "
            f"engine (tolerance {NO_SLOWDOWN_TOLERANCE}x)"
        )
    min_speedup = QUICK_MIN_SPEEDUP if quick else FULL_MIN_SPEEDUP
    if hardware_limited:
        print(
            f"note: {cpu_count} core(s) < {N_SHARDS} shards — speedup gate "
            f"disarmed (hardware_limited), recording measured numbers only"
        )
    elif speedup < min_speedup:
        failures.append(
            f"4-shard speedup {speedup:.2f}x below the {min_speedup}x gate"
        )

    result = {
        "benchmark": "sharded_executor",
        "host": bench_header(),
        "graph": {
            "generator": "rmat",
            "n_nodes": nodes,
            "requested_edges": edges,
            "n_rows": operator.n_rows,
            "nnz": operator.nnz,
        },
        "cpu_count": cpu_count,
        "hardware_limited": hardware_limited,
        "backend": default_backend_name(),
        "pagerank": {
            "iterations": iterations,
            "single_shard_seconds": single_seconds,
            "single_shard_iterations_per_second": iterations / single_seconds,
            "sharded_seconds": bitonic["seconds"],
            "sharded_iterations_per_second": (
                iterations / bitonic["seconds"]
            ),
            "speedup": speedup,
            "speedup_gate": None if hardware_limited else min_speedup,
        },
        "partitions": {"bitonic": bitonic, "contiguous": contiguous},
        "auto_policy": auto,
        "bit_identical": not any("bitwise" in f for f in failures),
        "quick": quick,
    }

    print(
        f"single:     {single_seconds:8.3f} s "
        f"({iterations / single_seconds:8.1f} it/s)"
    )
    for name, stats in result["partitions"].items():
        print(
            f"{name:<11} {stats['seconds']:8.3f} s "
            f"({stats['iterations_per_second']:8.1f} it/s)  "
            f"nnz imbalance {stats['nnz_imbalance']:.3f}, "
            f"measured {stats['measured_imbalance']:.3f}"
        )
    print(
        f"speedup: {speedup:5.2f}x with {N_SHARDS} shards   "
        f"auto-policy ratio: {auto['ratio']:.2f}x "
        f"({auto['auto_shards']} shard(s) on {auto['nnz']:,} nnz)"
    )
    return result, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph + regression gates (CI mode)",
    )
    args = parser.parse_args(argv)
    result, failures = run(quick=args.quick)

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_sharded.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
